//! The immutable compressed-sparse-row state graph.
//!
//! Edges carry the packed choice-combination code that caused the
//! transition. Under the paper's default policy only the *first* condition
//! discovered per `(src, dst)` arc is recorded ("only one is recorded to
//! become part of the state graph", Section 3.2); the
//! [`EdgePolicy::AllLabels`] policy records every distinct condition, the
//! fix the paper proposes in Section 4 for the missed-bug case of
//! Figure 4.2.
//!
//! The storage is three flat arrays — `row` (length `states + 1`), `dst`
//! and `label` (length `edges`) — shared behind an [`Arc`], so cloning a
//! [`StateGraph`] is O(1) and every consumer (tour generation, coverage
//! tracking, fuzz feedback, snapshots) reads the same memory.

use std::collections::VecDeque;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Dense identifier of a state in a [`StateGraph`]. Id 0 is the reset state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateId(pub u32);

/// Dense index of an edge in a [`StateGraph`]'s flat edge arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeIx(pub u32);

/// A packed choice-combination code labelling an edge.
pub type EdgeLabel = u64;

/// How many conditions to record per `(src, dst)` arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EdgePolicy {
    /// Record only the first condition found per arc (the paper's default;
    /// can miss aliased-condition bugs, Figure 4.2).
    #[default]
    FirstLabel,
    /// Record every distinct condition per arc (the paper's proposed fix).
    AllLabels,
}

/// A single outgoing edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Destination state.
    pub dst: StateId,
    /// The choice combination that drives this transition.
    pub label: EdgeLabel,
}

/// The shared flat arrays. `row[s]..row[s+1]` indexes the out-edges of
/// state `s` in `dst`/`label`.
#[derive(Debug, Default)]
pub(crate) struct CsrData {
    pub(crate) row: Vec<u32>,
    pub(crate) dst: Vec<u32>,
    pub(crate) label: Vec<EdgeLabel>,
}

/// A directed, edge-labelled state graph in compressed-sparse-row form.
///
/// Immutable once built (see [`GraphBuilder`](crate::GraphBuilder));
/// cloning shares the underlying arrays.
#[derive(Debug, Clone)]
pub struct StateGraph {
    data: Arc<CsrData>,
}

impl Default for StateGraph {
    fn default() -> Self {
        StateGraph::new()
    }
}

impl PartialEq for StateGraph {
    fn eq(&self, other: &Self) -> bool {
        self.data.row == other.data.row
            && self.data.dst == other.data.dst
            && self.data.label == other.data.label
    }
}

impl Eq for StateGraph {}

impl StateGraph {
    /// Creates an empty graph (zero states, zero edges).
    pub fn new() -> Self {
        StateGraph { data: Arc::new(CsrData { row: vec![0], dst: Vec::new(), label: Vec::new() }) }
    }

    pub(crate) fn from_data(data: CsrData) -> Self {
        debug_assert_eq!(data.row.first(), Some(&0));
        debug_assert_eq!(data.row.last().copied().unwrap_or(0) as usize, data.dst.len());
        debug_assert_eq!(data.dst.len(), data.label.len());
        StateGraph { data: Arc::new(data) }
    }

    /// The raw row-offset array (`states + 1` entries, first 0, last
    /// equals [`edge_count`](Self::edge_count)).
    pub fn row(&self) -> &[u32] {
        &self.data.row
    }

    /// The raw destination array, one entry per edge in [`EdgeIx`] order.
    pub fn dst(&self) -> &[u32] {
        &self.data.dst
    }

    /// The raw label array, one entry per edge in [`EdgeIx`] order.
    pub fn label(&self) -> &[EdgeLabel] {
        &self.data.label
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.data.row.len() - 1
    }

    /// Number of recorded edges.
    pub fn edge_count(&self) -> usize {
        self.data.dst.len()
    }

    /// The dense edge-index range of state `s`'s out-edges.
    pub fn out_range(&self, s: StateId) -> std::ops::Range<u32> {
        self.data.row[s.0 as usize]..self.data.row[s.0 as usize + 1]
    }

    /// Out-degree of state `s`.
    pub fn out_degree(&self, s: StateId) -> usize {
        self.out_range(s).len()
    }

    /// Destination of edge `e`.
    pub fn edge_dst(&self, e: EdgeIx) -> StateId {
        StateId(self.data.dst[e.0 as usize])
    }

    /// Label of edge `e`.
    pub fn edge_label(&self, e: EdgeIx) -> EdgeLabel {
        self.data.label[e.0 as usize]
    }

    /// Source state of edge `e` (binary search over the row array).
    pub fn edge_src(&self, e: EdgeIx) -> StateId {
        let i = e.0;
        // partition_point returns the first row index with row[idx] > i
        let s = self.data.row.partition_point(|&r| r <= i) - 1;
        StateId(s as u32)
    }

    /// Outgoing edges of a state, in discovery order.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn edges(&self, s: StateId) -> OutEdges<'_> {
        let r = self.out_range(s);
        let (lo, hi) = (r.start as usize, r.end as usize);
        OutEdges { dst: &self.data.dst[lo..hi], label: &self.data.label[lo..hi] }
    }

    /// Iterates over all `(src, edge)` pairs in [`EdgeIx`] order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (StateId, Edge)> + '_ {
        (0..self.state_count()).flat_map(move |s| {
            let s = StateId(s as u32);
            self.edges(s).iter().map(move |e| (s, e))
        })
    }

    /// In-degree of every state.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.state_count()];
        for &d in &self.data.dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Unweighted shortest-path distances (in edges) from `from` to every
    /// state; `usize::MAX` marks unreachable states.
    pub fn bfs_distances(&self, from: StateId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.state_count()];
        let mut q = VecDeque::new();
        dist[from.0 as usize] = 0;
        q.push_back(from);
        while let Some(s) = q.pop_front() {
            let d = dist[s.0 as usize];
            for e in self.edges(s) {
                let dd = &mut dist[e.dst.0 as usize];
                if *dd == usize::MAX {
                    *dd = d + 1;
                    q.push_back(e.dst);
                }
            }
        }
        dist
    }

    /// Whether every state is reachable from state 0 (reset). The
    /// enumeration always produces such graphs; hand-built graphs may not.
    pub fn all_reachable_from_reset(&self) -> bool {
        if self.state_count() == 0 {
            return true;
        }
        self.bfs_distances(StateId(0)).iter().all(|&d| d != usize::MAX)
    }

    /// Whether the graph is strongly connected (needed for a single
    /// transition tour to exist; the PP graph is *not*, which is why the
    /// paper's generator starts multiple traces from reset).
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.state_count();
        if n == 0 {
            return true;
        }
        if !self.all_reachable_from_reset() {
            return false;
        }
        // Reverse reachability from reset over a flat counting-sort
        // transpose (one `u32` per edge, no per-state allocations).
        let mut rrow = vec![0u32; n + 1];
        for &d in &self.data.dst {
            rrow[d as usize + 1] += 1;
        }
        for i in 0..n {
            rrow[i + 1] += rrow[i];
        }
        let mut rsrc = vec![0u32; self.edge_count()];
        let mut cursor = rrow.clone();
        for (s, e) in self.iter_edges() {
            let c = &mut cursor[e.dst.0 as usize];
            rsrc[*c as usize] = s.0;
            *c += 1;
        }
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[0] = true;
        q.push_back(0u32);
        while let Some(s) = q.pop_front() {
            let (lo, hi) = (rrow[s as usize] as usize, rrow[s as usize + 1] as usize);
            for &p in &rsrc[lo..hi] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    q.push_back(p);
                }
            }
        }
        seen.into_iter().all(|b| b)
    }

    /// Whether two handles share the same underlying CSR arrays.
    ///
    /// Clones are O(1) views over one allocation; a cache handing out
    /// graph handles can assert with this that consumers received shares,
    /// not copies.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Approximate resident size of the CSR arrays in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.data.row.len() * std::mem::size_of::<u32>()
            + self.data.dst.len() * std::mem::size_of::<u32>()
            + self.data.label.len() * std::mem::size_of::<EdgeLabel>()
    }

    /// Emits the graph in Graphviz DOT format with a caller-supplied state
    /// labeller; intended for small example graphs.
    pub fn to_dot(&self, mut state_label: impl FnMut(StateId) -> String) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph state_graph {\n  rankdir=LR;\n");
        for i in 0..self.state_count() {
            let _ = writeln!(s, "  n{} [label=\"{}\"];", i, state_label(StateId(i as u32)));
        }
        for (src, e) in self.iter_edges() {
            let _ = writeln!(s, "  n{} -> n{} [label=\"{}\"];", src.0, e.dst.0, e.label);
        }
        s.push_str("}\n");
        s
    }
}

/// A borrowed view of one state's out-edges: parallel `dst`/`label`
/// subslices of the CSR arrays. Iterating yields [`Edge`] values, so call
/// sites written against the old `&[Edge]` adjacency keep working.
#[derive(Clone, Copy)]
pub struct OutEdges<'a> {
    dst: &'a [u32],
    label: &'a [EdgeLabel],
}

impl<'a> OutEdges<'a> {
    /// Number of out-edges.
    pub fn len(&self) -> usize {
        self.dst.len()
    }

    /// Whether there are no out-edges.
    pub fn is_empty(&self) -> bool {
        self.dst.is_empty()
    }

    /// The `i`-th out-edge, if in range.
    pub fn get(&self, i: usize) -> Option<Edge> {
        Some(Edge { dst: StateId(*self.dst.get(i)?), label: *self.label.get(i)? })
    }

    /// Iterates the edges in discovery order.
    pub fn iter(&self) -> OutEdgesIter<'a> {
        OutEdgesIter { inner: self.dst.iter().zip(self.label.iter()) }
    }
}

impl PartialEq for OutEdges<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.dst == other.dst && self.label == other.label
    }
}

impl Eq for OutEdges<'_> {}

impl std::fmt::Debug for OutEdges<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for OutEdges<'a> {
    type Item = Edge;
    type IntoIter = OutEdgesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &OutEdges<'a> {
    type Item = Edge;
    type IntoIter = OutEdgesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over [`OutEdges`], yielding [`Edge`] values.
#[derive(Clone)]
pub struct OutEdgesIter<'a> {
    inner: std::iter::Zip<std::slice::Iter<'a, u32>, std::slice::Iter<'a, EdgeLabel>>,
}

impl Iterator for OutEdgesIter<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        let (&dst, &label) = self.inner.next()?;
        Some(Edge { dst: StateId(dst), label })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl DoubleEndedIterator for OutEdgesIter<'_> {
    fn next_back(&mut self) -> Option<Edge> {
        let (&dst, &label) = self.inner.next_back()?;
        Some(Edge { dst: StateId(dst), label })
    }
}

impl ExactSizeIterator for OutEdgesIter<'_> {}
impl std::iter::FusedIterator for OutEdgesIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> StateGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 0
        let mut b = GraphBuilder::new(EdgePolicy::FirstLabel);
        b.add_edge(StateId(0), StateId(1), 0);
        b.add_edge(StateId(0), StateId(2), 1);
        b.add_edge(StateId(1), StateId(3), 0);
        b.add_edge(StateId(2), StateId(3), 0);
        b.add_edge(StateId(3), StateId(0), 0);
        b.finish().unwrap().0
    }

    #[test]
    fn bfs_distances_on_diamond() {
        let g = diamond();
        let d = g.bfs_distances(StateId(0));
        assert_eq!(d, vec![0, 1, 1, 2]);
    }

    #[test]
    fn strong_connectivity() {
        let g = diamond();
        assert!(g.is_strongly_connected());
        let mut b = GraphBuilder::new(EdgePolicy::FirstLabel);
        b.add_edge(StateId(0), StateId(1), 0);
        b.add_edge(StateId(0), StateId(2), 1);
        b.add_edge(StateId(0), StateId(4), 2);
        b.add_edge(StateId(1), StateId(3), 0);
        b.add_edge(StateId(2), StateId(3), 0);
        b.add_edge(StateId(3), StateId(0), 0);
        let g2 = b.finish().unwrap().0;
        // state 4 has no way back
        assert!(g2.all_reachable_from_reset());
        assert!(!g2.is_strongly_connected());
    }

    #[test]
    fn in_degrees_counted() {
        let g = diamond();
        assert_eq!(g.in_degrees(), vec![1, 1, 1, 2]);
    }

    #[test]
    fn dot_output_mentions_every_edge() {
        let g = diamond();
        let dot = g.to_dot(|s| format!("S{}", s.0));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n3 -> n0"));
        assert!(dot.contains("S3"));
    }

    #[test]
    fn edge_src_inverts_out_range() {
        let g = diamond();
        for e in 0..g.edge_count() as u32 {
            let s = g.edge_src(EdgeIx(e));
            assert!(g.out_range(s).contains(&e));
        }
    }

    #[test]
    fn out_edges_view_behaves_like_a_slice() {
        let g = diamond();
        let out = g.edges(StateId(0));
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
        assert_eq!(out.get(0), Some(Edge { dst: StateId(1), label: 0 }));
        assert_eq!(out.get(2), None);
        let collected: Vec<Edge> = out.iter().collect();
        assert_eq!(collected.len(), 2);
        // by-ref and by-value iteration both yield Edge values
        let mut n = 0;
        for e in &out {
            assert!(e.dst.0 <= 2);
            n += 1;
        }
        for e in out {
            assert!(e.dst.0 <= 2);
            n += 1;
        }
        assert_eq!(n, 4);
        // reverse iteration sees the same edges
        let rev: Vec<Edge> = out.iter().rev().collect();
        assert_eq!(rev.first(), Some(&Edge { dst: StateId(2), label: 1 }));
    }

    #[test]
    fn empty_graph_is_trivially_connected() {
        let g = StateGraph::new();
        assert_eq!(g.state_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.all_reachable_from_reset());
        assert!(g.is_strongly_connected());
        assert!(g.in_degrees().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let g = diamond();
        let h = g.clone();
        assert_eq!(g, h);
        assert!(std::ptr::eq(g.row().as_ptr(), h.row().as_ptr()));
    }
}
