//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework under serde's names. Unlike
//! real serde there is no data-model indirection: [`Serialize`] writes JSON
//! text directly and [`Deserialize`] reads it back through [`de::Parser`].
//! The derive macros (re-exported from the vendored `serde_derive`) cover
//! the shapes this workspace uses: named-field structs, tuple structs,
//! unit-variant enums (with optional discriminants) and enums with payload
//! variants, all following serde's conventional JSON encodings.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

/// Serialize `self` as JSON text appended to `out`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Construct `Self` from JSON text held by a [`de::Parser`].
pub trait Deserialize: Sized {
    /// Parses one JSON value into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`de::Error`] on malformed or mismatching input.
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error>;
}

/// Escapes and appends a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buffer(*self as i128).as_str());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                let v = p.parse_integer()?;
                <$t>::try_from(v).map_err(|_| p.error("integer out of range"))
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn itoa_buffer(v: i128) -> String {
    v.to_string()
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_bool()
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_f64()
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_string()
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if p.try_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize_json(p)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.expect('[')?;
        let mut out = Vec::new();
        if p.try_char(']') {
            return Ok(out);
        }
        loop {
            out.push(T::deserialize_json(p)?);
            if p.try_char(',') {
                continue;
            }
            p.expect(']')?;
            return Ok(out);
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        Ok(Box::new(T::deserialize_json(p)?))
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $ix:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$ix.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                p.expect('[')?;
                let mut first = true;
                let value = ($(
                    {
                        if !first { p.expect(',')?; }
                        first = false;
                        $name::deserialize_json(p)?
                    },
                )+);
                let _ = first;
                p.expect(']')?;
                Ok(value)
            }
        }
    };
}
impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for std::time::Duration {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"secs\":");
        self.as_secs().serialize_json(out);
        out.push_str(",\"nanos\":");
        self.subsec_nanos().serialize_json(out);
        out.push('}');
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.expect('{')?;
        let mut secs: Option<u64> = None;
        let mut nanos: Option<u32> = None;
        if !p.try_char('}') {
            loop {
                let key = p.parse_string()?;
                p.expect(':')?;
                match key.as_str() {
                    "secs" => secs = Some(u64::deserialize_json(p)?),
                    "nanos" => nanos = Some(u32::deserialize_json(p)?),
                    _ => p.skip_value()?,
                }
                if p.try_char(',') {
                    continue;
                }
                p.expect('}')?;
                break;
            }
        }
        match (secs, nanos) {
            (Some(s), Some(n)) => Ok(std::time::Duration::new(s, n)),
            _ => Err(p.error("Duration requires secs and nanos")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T, json: &str) {
        let mut s = String::new();
        v.serialize_json(&mut s);
        assert_eq!(s, json);
        let mut p = de::Parser::new(&s);
        let back = T::deserialize_json(&mut p).unwrap();
        p.finish().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42u64, "42");
        round_trip(-7i32, "-7");
        round_trip(true, "true");
        round_trip(String::from("a\"b\\c"), r#""a\"b\\c""#);
        round_trip(Some(5u8), "5");
        round_trip(Option::<u8>::None, "null");
        round_trip(vec![1u32, 2, 3], "[1,2,3]");
        round_trip((4u64, 5usize), "[4,5]");
        round_trip(std::time::Duration::new(3, 20), "{\"secs\":3,\"nanos\":20}");
    }

    #[test]
    fn nested_containers_round_trip() {
        round_trip(vec![vec![1u8], vec![], vec![2, 3]], "[[1],[],[2,3]]");
        round_trip(vec![(1u64, 2usize), (3, 4)], "[[1,2],[3,4]]");
    }

    #[test]
    fn out_of_range_integer_rejected() {
        let mut p = de::Parser::new("300");
        assert!(u8::deserialize_json(&mut p).is_err());
    }
}
