//! Regenerates Table 2.1: the six PP bugs, whether the generated
//! transition-tour vectors expose them, and whether equal-budget random
//! and coverage-guided fuzzing baselines do.
//!
//! Run at scale `full` (the default here) so every trigger is reachable.

use archval_bench::threads_from_args;
use archval_pp::{BugSet, PpScale};
use archval_sim::campaign::{random_baseline_detects, run_campaign, CampaignConfig};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("micro") => PpScale::micro(),
        Some("standard") => PpScale::standard(),
        Some("paper") => PpScale::paper(),
        _ => PpScale::full(),
    };
    let threads = threads_from_args();
    eprintln!(
        "running the bug campaign at {scale:?} with {threads} worker thread(s) \
         (enumeration + 6 bug runs + baseline)..."
    );
    let report = run_campaign(&CampaignConfig {
        scale,
        random_budget_multiplier: 1,
        fuzz_budget_multiplier: 1,
        threads,
        ..CampaignConfig::default()
    });

    println!("== Table 2.1 — Synopsis of Discovered Bugs ({scale:?}) ==\n");
    println!(
        "tour vectors: {} traces, {} total cycles; random baseline budget: same\n",
        report.traces, report.tour_cycle_budget
    );
    let mut realistic_detected = 0;
    for o in &report.outcomes {
        println!("{}", o.bug);
        match (o.tour_detected_at_trace, o.tour_cycles_to_detect) {
            (Some(t), Some(c)) => {
                println!("    tour vectors: DETECTED (trace {t}, after {c} cycles)");
            }
            _ => println!("    tour vectors: not detected at this scale"),
        }
        match o.random_cycles_to_detect {
            Some(c) => {
                println!("    aggressive random (rare bits p=0.5): detected after {c} cycles")
            }
            None => println!(
                "    aggressive random (rare bits p=0.5): NOT DETECTED within {} cycles",
                report.tour_cycle_budget
            ),
        }
        match o.fuzz_cycles_to_detect {
            Some(c) => {
                println!("    coverage-guided fuzzing: detected after {c} cycles")
            }
            None => println!(
                "    coverage-guided fuzzing: NOT DETECTED within {} cycles",
                report.tour_cycle_budget
            ),
        }
        // realistic traffic: rare interface conditions actually rare
        let realistic = random_baseline_detects(
            &scale,
            BugSet::only(o.bug),
            report.tour_cycle_budget,
            0.03,
            0xBEEF ^ (o.bug as u64),
        );
        match realistic {
            Some(c) => {
                realistic_detected += 1;
                println!("    realistic random (rare bits p=0.03): detected after {c} cycles");
            }
            None => println!(
                "    realistic random (rare bits p=0.03): NOT DETECTED within {} cycles",
                report.tour_cycle_budget
            ),
        }
        println!();
    }
    println!(
        "summary: tour vectors {}/6 (deterministically, with full arc coverage),\n\
         equal-budget aggressive random {}/6, equal-budget realistic random {}/6,\n\
         equal-budget coverage-guided fuzzing {}/6\n\
         (paper: all six found by generated vectors, none previously found by\n\
         hand-written or random tests)",
        report.tour_detected(),
        report.random_detected(),
        realistic_detected,
        report.fuzz_detected()
    );
}
