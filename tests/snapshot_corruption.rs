//! Snapshot corruption robustness: a damaged snapshot file must surface
//! as a typed [`archval::Error::Snapshot`] — never a panic, an abort, or
//! a silent mis-load.
//!
//! Three corruption families:
//!
//! 1. **truncation** at every sampled prefix length;
//! 2. **bit flips** anywhere in the file (the FNV-1a-64 container
//!    checksum must catch them);
//! 3. **re-checksummed corruption** — payload bytes damaged and the
//!    trailer recomputed, so parsing reaches the chunk decoders. This is
//!    the family that exercises structural validation, including the
//!    count-versus-payload check that stops a corrupt header from
//!    requesting a multi-gigabyte allocation.

use std::panic::{catch_unwind, AssertUnwindSafe};

use archval::fsm::{
    enumerate, load_enum_result, save_enum_result, EnumConfig, Model, ModelBuilder,
};

fn counter_model() -> Model {
    let mut b = ModelBuilder::new("corruption_counter");
    let en = b.choice("enable", 2);
    let count = b.state_var("count", 8, 0);
    let cur = b.var_expr(count);
    let bumped = b.add(cur, b.constant(1));
    let wrapped = b.modulo(bumped, b.constant(8));
    let next = b.ternary(b.choice_expr(en), wrapped, cur);
    b.set_next(count, next);
    b.build().unwrap()
}

/// FNV-1a-64, matching the snapshot container's documented checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Replaces the trailing checksum so the damaged body parses as framed.
fn rechecksum(mut bytes: Vec<u8>) -> Vec<u8> {
    let body = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    bytes
}

/// Writes `bytes` to a fresh temp file and attempts to load it; returns
/// `Err(())` on panic, else the typed load result mapped to `Ok`/`Err`.
fn try_load(model: &Model, bytes: &[u8], tag: &str) -> Result<Result<(), String>, ()> {
    let path =
        std::env::temp_dir().join(format!("archval_corrupt_{tag}_{}.avgs", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        load_enum_result(&path, model).map(|_| ()).map_err(|e| e.to_string())
    }));
    let _ = std::fs::remove_file(&path);
    outcome.map_err(|_| ())
}

fn pristine(model: &Model) -> Vec<u8> {
    let enumd = enumerate(model, &EnumConfig::default()).unwrap();
    let path =
        std::env::temp_dir().join(format!("archval_corrupt_base_{}.avgs", std::process::id()));
    save_enum_result(&path, model, &enumd).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

#[test]
fn every_truncation_is_a_typed_error() {
    let model = counter_model();
    let bytes = pristine(&model);
    assert!(try_load(&model, &bytes, "full").unwrap().is_ok(), "pristine file must load");

    let step = (bytes.len() / 97).max(1);
    for len in (0..bytes.len()).step_by(step) {
        let result = try_load(&model, &bytes[..len], "trunc")
            .unwrap_or_else(|()| panic!("loader panicked on truncation to {len} bytes"));
        assert!(result.is_err(), "truncation to {len} of {} bytes loaded silently", bytes.len());
    }
}

#[test]
fn every_bit_flip_is_caught_by_the_checksum() {
    let model = counter_model();
    let bytes = pristine(&model);
    let step = (bytes.len() / 211).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        for mask in [0x01u8, 0x80] {
            let mut damaged = bytes.clone();
            damaged[pos] ^= mask;
            let result = try_load(&model, &damaged, "flip")
                .unwrap_or_else(|()| panic!("loader panicked on bit flip at byte {pos}"));
            assert!(result.is_err(), "bit flip at byte {pos} (mask {mask:#04x}) loaded silently");
        }
    }
}

#[test]
fn rechecksummed_corruption_never_panics() {
    let model = counter_model();
    let bytes = pristine(&model);
    // skip magic/version (first 8) and the checksum trailer (last 8)
    let step = ((bytes.len() - 16) / 151).max(1);
    for pos in (8..bytes.len() - 8).step_by(step) {
        for mask in [0x01u8, 0xFF] {
            let mut damaged = bytes.clone();
            damaged[pos] ^= mask;
            let damaged = rechecksum(damaged);
            // A self-consistent file may decode (e.g. a flipped edge
            // label is just a different valid graph); what it must never
            // do is panic or abort.
            let _ = try_load(&model, &damaged, "resum")
                .unwrap_or_else(|()| panic!("loader panicked on re-checksummed flip at {pos}"));
        }
    }
}

#[test]
fn huge_count_header_fails_without_allocating() {
    let model = counter_model();
    let bytes = pristine(&model);
    // find the CSR graph chunk and blow up its state/edge counts to the
    // u32 ceiling, then re-checksum so parsing reaches the decoder
    let tag_at =
        bytes.windows(4).position(|w| w == b"CSRG").expect("snapshot contains a CSRG chunk");
    let payload_at = tag_at + 4 + 8; // tag + u64 length
    let mut damaged = bytes.clone();
    damaged[payload_at..payload_at + 8].copy_from_slice(&0xFFFF_FFFFu64.to_le_bytes());
    damaged[payload_at + 8..payload_at + 16].copy_from_slice(&0xFFFF_FFFFu64.to_le_bytes());
    let damaged = rechecksum(damaged);
    let result = try_load(&model, &damaged, "huge")
        .expect("loader must not panic on a 4-billion-state header");
    let err = result.expect_err("a 4-billion-state header over a tiny payload must not load");
    assert!(!err.is_empty());
}

#[test]
fn corruption_surfaces_as_core_snapshot_error() {
    let model = counter_model();
    let bytes = pristine(&model);
    let truncated = &bytes[..bytes.len() / 2];
    let path =
        std::env::temp_dir().join(format!("archval_corrupt_core_{}.avgs", std::process::id()));
    std::fs::write(&path, truncated).unwrap();
    let err = load_enum_result(&path, &model).map(|_| ()).unwrap_err();
    std::fs::remove_file(&path).unwrap();
    // the top-level pipeline wraps it as Error::Snapshot
    let top: archval::Error = err.into();
    assert!(matches!(top, archval::Error::Snapshot(_)), "{top}");
}
