//! Shared helpers for the `repro-*` binaries and criterion benches.

use std::path::PathBuf;

use archval::Engine;
use archval_pp::PpScale;

/// Positional command-line arguments with the `--snapshot`/`--engine`
/// flags (and their values) removed, so `scale` and `threads` keep their
/// positions whether or not the flags are present.
fn positional_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--snapshot" || a == "--engine" {
            // consume the flag's value
            if args.next().is_none() {
                eprintln!("{a} requires a value argument");
                std::process::exit(2);
            }
        } else if !a.starts_with("--snapshot=") && !a.starts_with("--engine=") {
            out.push(a);
        }
    }
    out
}

/// Parses the `--engine <compiled|tree>` (or `--engine=<...>`) flag
/// selecting the step engine, defaulting to [`Engine::Compiled`]. Both
/// engines produce bit-identical results; `tree` exists as the
/// differential oracle and for before/after timing comparisons.
pub fn engine_from_args() -> Engine {
    let mut args = std::env::args().skip(1);
    let parse = |s: &str| {
        s.parse::<Engine>().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        if a == "--engine" {
            return parse(&args.next().unwrap_or_else(|| {
                eprintln!("--engine requires a value (compiled|tree)");
                std::process::exit(2);
            }));
        }
        if let Some(name) = a.strip_prefix("--engine=") {
            return parse(name);
        }
    }
    Engine::default()
}

/// Parses the `--snapshot <path>` (or `--snapshot=<path>`) flag: where to
/// load the enumeration snapshot from, or save it after enumerating.
pub fn snapshot_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--snapshot" {
            return Some(PathBuf::from(args.next().unwrap_or_else(|| {
                eprintln!("--snapshot requires a path argument");
                std::process::exit(2);
            })));
        }
        if let Some(path) = a.strip_prefix("--snapshot=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Parses a scale argument (`micro|standard|full|paper`), defaulting to
/// `standard`.
pub fn scale_from_args() -> PpScale {
    match positional_args().first().map(String::as_str) {
        Some("micro") => PpScale::micro(),
        Some("full") => PpScale::full(),
        Some("paper") => PpScale::paper(),
        Some("standard") | None => PpScale::standard(),
        Some(other) => {
            eprintln!("unknown scale `{other}`; use micro|standard|full|paper");
            std::process::exit(2);
        }
    }
}

/// Parses the worker-thread count from the second positional argument or
/// the `ARCHVAL_THREADS` environment variable, defaulting to `1`
/// (sequential). The repro binaries produce identical numbers for any
/// value; threads only change wall-clock time.
pub fn threads_from_args() -> usize {
    let arg = positional_args().get(1).cloned().or_else(|| std::env::var("ARCHVAL_THREADS").ok());
    match arg.as_deref().map(str::parse::<usize>) {
        None => 1,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => {
            eprintln!("thread count must be a positive integer");
            std::process::exit(2);
        }
    }
}

/// Peak resident-set size of this process so far, in bytes, from
/// `VmHWM` in `/proc/self/status`. `None` where procfs is unavailable
/// (non-Linux) — callers should record it as absent, not zero.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Writes a machine-readable result file `BENCH_<name>.json` for one
/// experiment, returning the path.
///
/// The directory comes from `ARCHVAL_BENCH_DIR` when set (CI points this
/// at its artifact directory), otherwise the current directory.
///
/// # Panics
///
/// Panics if serialization or the write fails — in a repro binary a lost
/// result should be loud.
pub fn emit_bench_json<T: serde::Serialize>(name: &str, value: &T) -> std::path::PathBuf {
    let dir = std::env::var("ARCHVAL_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("result serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
    path
}

/// Prints a two-column paper-vs-measured table row.
pub fn row(label: &str, paper: &str, measured: &str) {
    println!("{label:<42} {paper:>18} {measured:>18}");
}

/// Prints the table header.
pub fn header(title: &str) {
    println!("== {title} ==");
    println!("{:<42} {:>18} {:>18}", "", "paper", "measured");
}
