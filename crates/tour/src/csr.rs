//! Compressed sparse row form of a [`StateGraph`] with per-edge traversal
//! bookkeeping, sized for graphs with millions of edges.

use archval_fsm::graph::{StateGraph, StateId};
use archval_fsm::EdgeLabel;

/// Dense index of an edge in a [`CsrGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeIx(pub u32);

/// A [`StateGraph`] compiled to CSR adjacency with flat edge arrays.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `row[s]..row[s+1]` indexes the out-edges of state `s`.
    row: Vec<u32>,
    dst: Vec<u32>,
    label: Vec<EdgeLabel>,
}

impl CsrGraph {
    /// Compiles a state graph. Edge order within a state is preserved
    /// (discovery order), which keeps tour generation deterministic.
    pub fn compile(g: &StateGraph) -> Self {
        let n = g.state_count();
        let mut row = Vec::with_capacity(n + 1);
        let mut dst = Vec::with_capacity(g.edge_count());
        let mut label = Vec::with_capacity(g.edge_count());
        row.push(0);
        for s in 0..n {
            for e in g.edges(StateId(s as u32)) {
                dst.push(e.dst.0);
                label.push(e.label);
            }
            row.push(dst.len() as u32);
        }
        CsrGraph { row, dst, label }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.row.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.dst.len()
    }

    /// The dense edge-index range of state `s`'s out-edges.
    pub fn out_range(&self, s: StateId) -> std::ops::Range<u32> {
        self.row[s.0 as usize]..self.row[s.0 as usize + 1]
    }

    /// Destination of edge `e`.
    pub fn edge_dst(&self, e: EdgeIx) -> StateId {
        StateId(self.dst[e.0 as usize])
    }

    /// Label of edge `e`.
    pub fn edge_label(&self, e: EdgeIx) -> EdgeLabel {
        self.label[e.0 as usize]
    }

    /// Source state of edge `e` (binary search over the row array).
    pub fn edge_src(&self, e: EdgeIx) -> StateId {
        let i = e.0;
        // partition_point returns the first row index with row[idx] > i
        let s = self.row.partition_point(|&r| r <= i) - 1;
        StateId(s as u32)
    }

    /// Out-degree of state `s`.
    pub fn out_degree(&self, s: StateId) -> usize {
        self.out_range(s).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archval_fsm::graph::EdgePolicy;

    fn sample() -> (StateGraph, CsrGraph) {
        let mut g = StateGraph::new();
        g.add_edge(StateId(0), StateId(1), 10, EdgePolicy::AllLabels);
        g.add_edge(StateId(0), StateId(2), 11, EdgePolicy::AllLabels);
        g.add_edge(StateId(1), StateId(2), 12, EdgePolicy::AllLabels);
        g.add_edge(StateId(2), StateId(0), 13, EdgePolicy::AllLabels);
        let c = CsrGraph::compile(&g);
        (g, c)
    }

    #[test]
    fn compile_preserves_counts_and_order() {
        let (g, c) = sample();
        assert_eq!(c.state_count(), g.state_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert_eq!(c.out_range(StateId(0)), 0..2);
        assert_eq!(c.edge_dst(EdgeIx(0)), StateId(1));
        assert_eq!(c.edge_label(EdgeIx(1)), 11);
        assert_eq!(c.out_degree(StateId(1)), 1);
        assert_eq!(c.out_degree(StateId(2)), 1);
    }

    #[test]
    fn edge_src_inverts_out_range() {
        let (_, c) = sample();
        for e in 0..c.edge_count() as u32 {
            let s = c.edge_src(EdgeIx(e));
            assert!(c.out_range(s).contains(&e));
        }
    }

    #[test]
    fn empty_and_isolated_states() {
        let mut g = StateGraph::new();
        g.ensure_state(StateId(2)); // states 0..=2, no edges
        let c = CsrGraph::compile(&g);
        assert_eq!(c.state_count(), 3);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.out_degree(StateId(1)), 0);
    }
}
