//! Biased-random concretisation of instruction classes, and fully random
//! stimulus for the baseline comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use archval_pp::control::{class_code, slot2_code};
use archval_pp::isa::{AluOp, Instr, InstrClass, Reg};
use archval_pp::{CtrlIn, PpScale};

/// Base of the data region load/store immediates address (word addressed,
/// `r0`-relative) — safely above any generated program image.
pub const DATA_BASE: u16 = 0x8000;

/// Configuration for [`random_stimulus`].
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Cycles of stimulus to generate.
    pub cycles: usize,
    /// Probability that a 1-bit interface condition is in its rare state
    /// (miss / not ready / dirty / same-line). The paper's point is that
    /// uniform random stimulus rarely composes several rare conditions at
    /// once; lowering this models realistic traffic, 0.5 models aggressive
    /// random testing.
    pub rare_probability: f64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig { cycles: 10_000, rare_probability: 0.5 }
    }
}

const ALU_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sltu,
    AluOp::Sll,
    AluOp::Srl,
];

fn reg_in(rng: &mut StdRng, lo: u8, hi: u8) -> Reg {
    Reg(rng.gen_range(lo..=hi))
}

/// A random data address immediate (used with base `r0`).
fn data_imm(rng: &mut StdRng) -> u16 {
    DATA_BASE | (rng.gen::<u16>() & 0x00FF)
}

/// Draws a random concrete instruction of `class` for the memory-pipe
/// slot. Destinations stay in `r1..=r7` so companion-slot instructions
/// (which use `r8..=r15`) can never RAW-depend on them.
pub fn concretize_slot1(rng: &mut StdRng, class: InstrClass) -> Instr {
    match class {
        InstrClass::Alu => {
            if rng.gen_bool(0.5) {
                Instr::Alu {
                    op: ALU_OPS[rng.gen_range(0..ALU_OPS.len())],
                    rd: reg_in(rng, 1, 7),
                    rs: reg_in(rng, 0, 15),
                    rt: reg_in(rng, 0, 15),
                }
            } else {
                Instr::AluImm {
                    op: AluOp::Add,
                    rd: reg_in(rng, 1, 7),
                    rs: reg_in(rng, 0, 15),
                    imm: rng.gen(),
                }
            }
        }
        InstrClass::Ld => Instr::Lw { rd: reg_in(rng, 1, 7), rs: Reg::ZERO, imm: data_imm(rng) },
        InstrClass::Sd => Instr::Sw { rt: reg_in(rng, 0, 15), rs: Reg::ZERO, imm: data_imm(rng) },
        InstrClass::Switch => Instr::Switch { rd: reg_in(rng, 1, 7) },
        InstrClass::Send => Instr::Send { rs: reg_in(rng, 0, 15) },
    }
}

/// Draws a random concrete instruction for the companion slot from its
/// class code (`slot2_code`). Destinations and sources stay in `r8..=r15`.
pub fn concretize_slot2(rng: &mut StdRng, code: u64) -> Instr {
    match code {
        slot2_code::SWITCH => Instr::Switch { rd: reg_in(rng, 8, 15) },
        slot2_code::SEND => Instr::Send { rs: reg_in(rng, 8, 15) },
        _ => Instr::Alu {
            op: ALU_OPS[rng.gen_range(0..ALU_OPS.len())],
            rd: reg_in(rng, 8, 15),
            rs: reg_in(rng, 8, 15),
            rt: reg_in(rng, 8, 15),
        },
    }
}

/// Draws one fully random cycle of abstract control inputs — the
/// random-testing baseline the paper contrasts with ("Random testing might
/// find this case, but each of the conditions is so improbable...").
pub fn random_ctrl_in(rng: &mut StdRng, scale: &PpScale, rare: f64) -> CtrlIn {
    let slot1 = scale.slot1_classes();
    let slot2 = scale.slot2_classes();
    let inbox_ready = !rng.gen_bool(rare);
    let outbox_ready = !rng.gen_bool(rare);
    CtrlIn {
        iclass: slot1[rng.gen_range(0..slot1.len())],
        iclass2: if scale.dual_comm_slot {
            slot2[rng.gen_range(0..slot2.len())]
        } else {
            class_code::ALU
        },
        ihit: !rng.gen_bool(rare),
        dhit: !rng.gen_bool(rare),
        victim_dirty: rng.gen_bool(rare),
        same_line: rng.gen_bool(rare),
        inbox_ready,
        outbox_ready,
        inbox_push: inbox_ready,
        outbox_pop: outbox_ready,
        mem_ready: !rng.gen_bool(rare),
    }
}

/// Generates a random per-cycle stimulus sequence for the baseline.
pub fn random_stimulus(scale: &PpScale, config: &RandomConfig, seed: u64) -> Vec<CtrlIn> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..config.cycles).map(|_| random_ctrl_in(&mut rng, scale, config.rare_probability)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use archval_pp::rtl::can_pair;

    #[test]
    fn concretized_instructions_have_the_requested_class() {
        let mut rng = StdRng::seed_from_u64(7);
        for class in InstrClass::ALL {
            for _ in 0..50 {
                assert_eq!(concretize_slot1(&mut rng, class).class(), class);
            }
        }
    }

    #[test]
    fn slot2_codes_map_to_classes() {
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(concretize_slot2(&mut rng, slot2_code::SWITCH).class(), InstrClass::Switch);
        assert_eq!(concretize_slot2(&mut rng, slot2_code::SEND).class(), InstrClass::Send);
        assert_eq!(concretize_slot2(&mut rng, slot2_code::ALU).class(), InstrClass::Alu);
    }

    #[test]
    fn generated_pairs_always_satisfy_the_pairing_rule() {
        let mut rng = StdRng::seed_from_u64(9);
        for class in InstrClass::ALL {
            for code in [slot2_code::ALU, slot2_code::SWITCH, slot2_code::SEND] {
                for _ in 0..50 {
                    let a = concretize_slot1(&mut rng, class);
                    let b = concretize_slot2(&mut rng, code);
                    assert!(can_pair(&a, &b), "{a:?} / {b:?}");
                }
            }
        }
    }

    #[test]
    fn data_addresses_stay_in_the_data_region() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            if let Instr::Lw { imm, .. } = concretize_slot1(&mut rng, InstrClass::Ld) {
                assert!(imm >= DATA_BASE);
            }
        }
    }

    #[test]
    fn random_stimulus_is_deterministic_per_seed() {
        let scale = PpScale::standard();
        let cfg = RandomConfig { cycles: 32, rare_probability: 0.3 };
        assert_eq!(random_stimulus(&scale, &cfg, 1), random_stimulus(&scale, &cfg, 1));
        assert_ne!(random_stimulus(&scale, &cfg, 1), random_stimulus(&scale, &cfg, 2));
    }
}
