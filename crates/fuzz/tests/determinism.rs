//! Differential determinism suite for the fuzzing engine: reruns are
//! byte-identical (serialized-report comparison) for every seed and
//! thread count, and the two feedback maps agree on what a replay looks
//! like.

use archval_fsm::builder::ModelBuilder;
use archval_fsm::enumerate::{enumerate, EnumConfig};
use archval_fsm::{Model, SyncSim};
use archval_fuzz::feedback::{Feedback, GraphFeedback, HashedFeedback};
use archval_fuzz::{FuzzConfig, FuzzEngine, RareSpec};

/// A two-variable model with a guarded interaction: `b` only moves while
/// `a` is saturated (an 11-deep ratchet), so covering `b`'s arcs requires
/// long composed sequences uniform random essentially never produces.
fn two_phase_model() -> Model {
    let mut b = ModelBuilder::new("two_phase");
    let go = b.choice("go", 3);
    let kick = b.choice("kick", 2);
    let a = b.state_var("a", 12, 0);
    let bv = b.state_var("b", 6, 0);

    let gc = b.choice_expr(go);
    let av = b.var_expr(a);
    let bvv = b.var_expr(bv);
    let at_go = b.eq_const(gc, 1);
    let at_rst = b.eq_const(gc, 2);
    let a_top = b.eq_const(av, 11);
    let a_bump = b.add(av, b.constant(1));
    let a_move = b.ternary(a_top, av, a_bump);
    let a_held = b.ternary(at_go, a_move, av);
    let a_next = b.ternary(at_rst, b.constant(0), a_held);
    b.set_next(a, a_next);

    let kc = b.choice_expr(kick);
    let kicked = b.eq_const(kc, 1);
    let b_top = b.eq_const(bvv, 5);
    let b_bump = b.add(bvv, b.constant(1));
    let b_move = b.ternary(b_top, b.constant(0), b_bump);
    let gate = b.and(a_top, kicked);
    let b_next = b.ternary(gate, b_move, bvv);
    b.set_next(bv, b_next);
    b.build().unwrap()
}

fn report_json(threads: usize, seed: u64) -> (String, usize) {
    let model = two_phase_model();
    let enumd = enumerate(&model, &EnumConfig::default()).unwrap();
    let config = FuzzConfig {
        cycle_budget: 4_000,
        seed,
        threads,
        rare: vec![RareSpec { choice: 0, value: 1 }, RareSpec { choice: 1, value: 1 }],
        ..FuzzConfig::default()
    };
    let mut engine = FuzzEngine::new(&model, GraphFeedback::new(&enumd), config);
    let report = engine.run().unwrap();
    let mut json = String::new();
    serde::Serialize::serialize_json(&report, &mut json);
    (json, engine.corpus().len())
}

#[test]
fn serialized_reports_are_byte_identical_across_reruns() {
    for threads in [1, 2, 4] {
        let (a, ca) = report_json(threads, 0xDEAD);
        let (b, cb) = report_json(threads, 0xDEAD);
        assert_eq!(a, b, "threads={threads}: serialized reports differ between reruns");
        assert_eq!(ca, cb);
    }
}

#[test]
fn different_seeds_explore_differently() {
    let (a, _) = report_json(1, 1);
    let (b, _) = report_json(1, 2);
    assert_ne!(a, b, "two seeds produced the exact same run");
}

#[test]
fn graph_and_hashed_feedback_replay_identical_state_trajectories() {
    let model = two_phase_model();
    let enumd = enumerate(&model, &EnumConfig::default()).unwrap();
    let graph = GraphFeedback::new(&enumd);
    let hashed = HashedFeedback::new(20);
    let mut sim = SyncSim::new(&model);
    let seq: Vec<u64> = (0..200).map(|i| [1u64, 4, 1, 2, 1, 1, 3][i % 7]).collect();
    let go = graph.trace(&mut sim, None, &seq).unwrap().obs;
    let ho = hashed.trace(&mut sim, None, &seq).unwrap().obs;
    assert_eq!(go.len(), ho.len());
    // same labels cycle-for-cycle, and state-equality structure matches:
    // two cycles share a graph src-state iff they share a hashed src-key
    for (g, h) in go.iter().zip(&ho) {
        assert_eq!(g.2, h.2);
    }
    for i in 0..go.len() {
        for j in i + 1..go.len() {
            assert_eq!(go[i].0 == go[j].0, ho[i].0 == ho[j].0, "cycles {i}/{j} disagree");
        }
    }
}

#[test]
fn fuzzer_reaches_the_gated_arcs_uniform_random_misses() {
    // the gated variable `b` needs `a` saturated AND kick=1; uniform
    // random resets `a` with p=1/3 each cycle, so composed coverage is
    // rare — the fuzzer must do strictly better under an equal budget
    let model = two_phase_model();
    let enumd = enumerate(&model, &EnumConfig::default()).unwrap();
    let budget = 4_000u64;

    let config = FuzzConfig {
        cycle_budget: budget,
        seed: 11,
        rare: vec![RareSpec { choice: 0, value: 1 }, RareSpec { choice: 1, value: 1 }],
        ..FuzzConfig::default()
    };
    let mut engine = FuzzEngine::new(&model, GraphFeedback::new(&enumd), config);
    let fuzz = engine.run().unwrap();

    let mut uniform = GraphFeedback::new(&enumd);
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(11);
    let seq: Vec<u64> = (0..budget)
        .map(|_| model.encode_choices(&[rng.gen_range(0..3), rng.gen_range(0..2)]))
        .collect();
    let mut sim = SyncSim::new(&model);
    let t = uniform.trace(&mut sim, None, &seq).unwrap();
    uniform.merge(&t.obs);

    assert!(
        fuzz.covered > uniform.covered(),
        "fuzz covered {} arcs, uniform covered {} (of {:?})",
        fuzz.covered,
        uniform.covered(),
        fuzz.total
    );
}
