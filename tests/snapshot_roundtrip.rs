//! End-to-end snapshot tests through the public pipeline: `AllLabels`
//! enumeration → CSR compile → tour generation → snapshot round-trip,
//! byte-exact determinism at micro scale, and a golden-bytes check that
//! pins the container format (magic, version, checksum) against
//! accidental layout changes.

use std::time::Duration;

use archval_fsm::graph::EdgePolicy;
use archval_fsm::snapshot::{snapshot_from_bytes, snapshot_to_bytes};
use archval_fsm::{enumerate, EnumConfig, ModelBuilder, SnapshotError};
use archval_pp::testkit;
use archval_tour::{generate_tours, TourConfig};

/// The paper's Section 4 fix end to end: enumerate the PP control model
/// recording *every* label per arc, compile to CSR, tour it, and push the
/// whole result through a snapshot — the loaded graph must tour
/// identically.
#[test]
fn all_labels_pipeline_round_trips_through_a_snapshot() {
    let (_, model) = testkit::micro_model();
    let first = enumerate(&model, &EnumConfig::default()).unwrap();
    let cfg = EnumConfig { edge_policy: EdgePolicy::AllLabels, ..EnumConfig::default() };
    let r = enumerate(&model, &cfg).unwrap();
    assert!(
        r.graph.edge_count() > first.graph.edge_count(),
        "all-labels must record the aliased conditions first-label suppresses"
    );

    let tours = generate_tours(&r.graph, &TourConfig::default());
    assert!(tours.covers_all_arcs(&r.graph));

    let bytes = snapshot_to_bytes(&model, &r);
    let loaded = snapshot_from_bytes(&model, &bytes).unwrap();
    assert_eq!(loaded.graph, r.graph);
    assert_eq!(loaded.stats, r.stats);
    assert_eq!(loaded.graph_stats, r.graph_stats);

    let loaded_tours = generate_tours(&loaded.graph, &TourConfig::default());
    assert_eq!(loaded_tours.traces(), tours.traces());
    assert!(loaded_tours.covers_all_arcs(&loaded.graph));
}

/// Save → load → save reproduces identical bytes at micro scale: the
/// container has no nondeterminism (no timestamps, no map iteration
/// order).
#[test]
fn micro_snapshot_is_byte_exact() {
    let (_, model) = testkit::micro_model();
    let r = enumerate(&model, &EnumConfig::default()).unwrap();
    let bytes = snapshot_to_bytes(&model, &r);
    let loaded = snapshot_from_bytes(&model, &bytes).unwrap();
    assert_eq!(snapshot_to_bytes(&model, &loaded), bytes);
}

fn golden_model() -> archval_fsm::Model {
    let mut b = ModelBuilder::new("golden");
    let en = b.choice("en", 2);
    let v = b.state_var("v", 4, 0);
    let cur = b.var_expr(v);
    let one = b.constant(1);
    let inc = b.add(cur, one);
    let next = b.ternary(b.choice_expr(en), inc, cur);
    b.set_next(v, next);
    b.build().unwrap()
}

/// Pins the on-disk container: magic, version, total size and checksum of
/// a fixed 4-state model with timing-dependent statistics zeroed. Any
/// format change (field order, widths, chunk layout) fails here and must
/// bump `snapshot::VERSION`.
#[test]
fn golden_snapshot_bytes_are_stable() {
    let model = golden_model();
    let mut r = enumerate(&model, &EnumConfig::default()).unwrap();
    assert_eq!(r.stats.states, 4);
    assert_eq!(r.stats.edges, 8);
    // zero what depends on the clock or the allocator so the bytes are a
    // pure function of the model
    r.stats.elapsed = Duration::ZERO;
    r.stats.approx_memory_bytes = 0;
    r.graph_stats.builder_peak_bytes = 0;
    r.graph_stats.finish_seconds = 0.0;

    let bytes = snapshot_to_bytes(&model, &r);
    assert_eq!(&bytes[0..4], b"AVGS", "magic");
    assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 1, "format version");

    let checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    assert_eq!(
        (bytes.len(), checksum),
        (GOLDEN_LEN, GOLDEN_CHECKSUM),
        "snapshot container layout changed — bump snapshot::VERSION \
         (got len {}, checksum {checksum:#018x})",
        bytes.len()
    );

    // and the pinned bytes still load
    let loaded = snapshot_from_bytes(&model, &bytes).unwrap();
    assert_eq!(loaded.graph, r.graph);
}

const GOLDEN_LEN: usize = 356;
const GOLDEN_CHECKSUM: u64 = 0x27d7_fe96_73be_5b87;

/// A snapshot taken for one model must not load for another.
#[test]
fn snapshot_for_a_different_model_is_rejected() {
    let (_, model) = testkit::micro_model();
    let r = enumerate(&model, &EnumConfig::default()).unwrap();
    let bytes = snapshot_to_bytes(&model, &r);
    assert!(matches!(
        snapshot_from_bytes(&golden_model(), &bytes),
        Err(SnapshotError::ModelMismatch { .. })
    ));
}
