//! Campaign-server latency and throughput: what the fingerprint-keyed
//! graph cache buys over per-request re-enumeration.
//!
//! ```text
//! repro-serve [micro|standard|full|paper] [clients]
//! ```
//!
//! Starts an in-process [`archval_serve::Server`] on a Unix socket and
//! measures, over real protocol round trips:
//!
//! 1. **cold** — the first `enumerate` request ever (re-enumerates the
//!    model, persists the snapshot);
//! 2. **warm** — repeat requests against the resident graph (median and
//!    mean over 32 requests);
//! 3. **snapshot restart** — a fresh server process image on the same
//!    cache dir (first request loads the snapshot file);
//! 4. **sustained** — `clients` concurrent connections each firing 50
//!    cache-hit requests, reported as requests/sec.
//!
//! The binary exits non-zero unless the `graph_ready` sources confirm
//! each phase hit the intended path (`enumerated` → `cache` →
//! `snapshot`) and the warm median beats the cold request. Results land
//! in `BENCH_serve.json`.

use std::sync::Arc;
use std::time::Instant;

use archval_bench::{emit_bench_json, peak_rss_bytes, run, BenchError};
use archval_serve::client::Client;
use archval_serve::{line_is_event, CacheConfig, Cmd, ModelRef, Request, Server, ServerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct ServeBench {
    scale: String,
    clients: usize,
    cold_request_seconds: f64,
    warm_request_seconds_median: f64,
    warm_request_seconds_mean: f64,
    snapshot_request_seconds: f64,
    cold_over_warm_speedup: f64,
    sustained_requests: usize,
    sustained_seconds: f64,
    requests_per_sec: f64,
    peak_rss_bytes: Option<u64>,
}

fn positional(n: usize) -> Option<String> {
    std::env::args().skip(1).filter(|a| !a.starts_with("--")).nth(n)
}

fn io_err(path: &std::path::Path) -> impl Fn(std::io::Error) -> BenchError + '_ {
    move |source| BenchError::Io { path: path.to_path_buf(), source }
}

/// Sends one enumerate request and returns (seconds-to-done, source).
fn timed_enumerate(
    sock: &std::path::Path,
    model: &str,
    id: &str,
) -> Result<(f64, String), BenchError> {
    let mut client = Client::connect_unix(sock).map_err(io_err(sock))?;
    let mut req = Request::new(Cmd::Enumerate);
    req.id = id.into();
    req.model = Some(ModelRef::Named(model.into()));
    let t0 = Instant::now();
    client.send(&req).map_err(io_err(sock))?;
    let lines = client.recv_until("done").map_err(io_err(sock))?;
    let elapsed = t0.elapsed().as_secs_f64();
    let ready = lines
        .iter()
        .find(|l| line_is_event(l, "graph_ready"))
        .ok_or_else(|| BenchError::Invalid(format!("no graph_ready for {id}: {lines:?}")))?;
    let source = ready
        .split("\"source\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .unwrap_or("")
        .to_string();
    Ok((elapsed, source))
}

fn start(
    sock: &std::path::Path,
    cache_dir: &std::path::Path,
    jobs_dir: &std::path::Path,
    workers: usize,
) -> Result<Arc<Server>, BenchError> {
    let config = ServerConfig {
        workers,
        cache: CacheConfig {
            snapshot_dir: Some(cache_dir.to_path_buf()),
            ..CacheConfig::default()
        },
        jobs_dir: Some(jobs_dir.to_path_buf()),
    };
    let server = Arc::new(Server::start(config).map_err(io_err(cache_dir))?);
    let listener = server.clone();
    let sock = sock.to_path_buf();
    std::thread::spawn(move || {
        if let Err(e) = archval_serve::listen_unix(&listener, &sock) {
            eprintln!("repro-serve: listener failed: {e}");
        }
    });
    // the listener thread binds asynchronously; callers connect with retry
    Ok(server)
}

fn stop(sock: &std::path::Path, server: &Arc<Server>) {
    if let Ok(mut c) = Client::connect_unix(sock) {
        let _ = c.send(&Request::new(Cmd::Shutdown));
        let _ = c.recv_line();
    }
    server.join();
}

fn connect_with_retry(sock: &std::path::Path) -> Result<Client, BenchError> {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match Client::connect_unix(sock) {
            Ok(c) => return Ok(c),
            Err(e) if Instant::now() >= deadline => {
                return Err(BenchError::Io { path: sock.to_path_buf(), source: e })
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
}

fn main() {
    run("repro-serve", || {
        let scale_word = positional(0).unwrap_or_else(|| "micro".into());
        if !matches!(scale_word.as_str(), "micro" | "standard" | "full" | "paper") {
            return Err(BenchError::Invalid(format!(
                "unknown scale {scale_word:?} (expected micro|standard|full|paper)"
            )));
        }
        let model = format!("pp-{scale_word}");
        let clients: usize = positional(1).map(|s| s.parse().unwrap_or(0)).unwrap_or(4).max(1);

        let root = std::env::temp_dir().join(format!("repro-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).map_err(io_err(&root))?;
        let sock = root.join("served.sock");
        let cache_dir = root.join("cache");
        let jobs_dir = root.join("jobs");

        // ---- cold + warm on one server ----
        let server = start(&sock, &cache_dir, &jobs_dir, clients.max(2))?;
        // wait until the listener accepts
        drop(connect_with_retry(&sock)?);

        let (cold, source) = timed_enumerate(&sock, &model, "cold-0")?;
        if source != "enumerated" {
            return Err(BenchError::Invalid(format!(
                "cold request came from {source:?}, expected a fresh enumeration"
            )));
        }
        eprintln!("cold request ({model}): {cold:.4} s");

        const WARM: usize = 32;
        let mut warm = Vec::with_capacity(WARM);
        for i in 0..WARM {
            let (t, source) = timed_enumerate(&sock, &model, &format!("warm-{i}"))?;
            if source != "cache" {
                return Err(BenchError::Invalid(format!(
                    "warm request {i} came from {source:?}, expected the cache"
                )));
            }
            warm.push(t);
        }
        warm.sort_by(f64::total_cmp);
        let warm_median = warm[WARM / 2];
        let warm_mean = warm.iter().sum::<f64>() / WARM as f64;
        eprintln!("warm requests: median {warm_median:.6} s, mean {warm_mean:.6} s over {WARM}");
        if warm_median >= cold {
            return Err(BenchError::Invalid(format!(
                "cache bought nothing: warm median {warm_median:.4} s >= cold {cold:.4} s"
            )));
        }

        // ---- sustained throughput with N concurrent clients ----
        const PER_CLIENT: usize = 50;
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let sock = sock.clone();
                let model = model.clone();
                std::thread::spawn(move || -> Result<(), String> {
                    let mut client = Client::connect_unix(&sock).map_err(|e| e.to_string())?;
                    for i in 0..PER_CLIENT {
                        let mut req = Request::new(Cmd::Enumerate);
                        req.id = format!("sus-{c}-{i}");
                        req.model = Some(ModelRef::Named(model.clone()));
                        client.send(&req).map_err(|e| e.to_string())?;
                        client.recv_until("done").map_err(|e| e.to_string())?;
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join()
                .map_err(|_| BenchError::Invalid("sustained client panicked".into()))?
                .map_err(BenchError::Invalid)?;
        }
        let sustained_seconds = t0.elapsed().as_secs_f64();
        let sustained_requests = clients * PER_CLIENT;
        let requests_per_sec = sustained_requests as f64 / sustained_seconds;
        eprintln!(
            "sustained: {sustained_requests} requests over {clients} clients in \
             {sustained_seconds:.3} s — {requests_per_sec:.0} req/s"
        );
        stop(&sock, &server);

        // ---- snapshot warm-start on a fresh server over the same cache ----
        // (its own socket path: the stopped listener removes its socket
        // file asynchronously and must not race the new bind)
        let sock = root.join("served2.sock");
        let jobs2 = root.join("jobs2");
        let server = start(&sock, &cache_dir, &jobs2, 2)?;
        drop(connect_with_retry(&sock)?);
        let (snapshot, source) = timed_enumerate(&sock, &model, "snap-0")?;
        if source != "snapshot" {
            return Err(BenchError::Invalid(format!(
                "restart request came from {source:?}, expected the snapshot file"
            )));
        }
        eprintln!("snapshot warm-start request: {snapshot:.4} s");
        stop(&sock, &server);

        let result = ServeBench {
            scale: scale_word,
            clients,
            cold_request_seconds: cold,
            warm_request_seconds_median: warm_median,
            warm_request_seconds_mean: warm_mean,
            snapshot_request_seconds: snapshot,
            cold_over_warm_speedup: cold / warm_median.max(1e-9),
            sustained_requests,
            sustained_seconds,
            requests_per_sec,
            peak_rss_bytes: peak_rss_bytes(),
        };
        emit_bench_json("serve", &result)?;
        std::fs::remove_dir_all(&root).ok();
        Ok(())
    });
}
