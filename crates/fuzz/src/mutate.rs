//! Mutation operators over choice-code sequences.
//!
//! Every operator works on the packed per-cycle choice codes
//! ([`crate::Seq`]), decoding a cycle into one value per choice input
//! only where it edits. Structural operators (truncate, extend, splice)
//! reshape the sequence; value operators (flip, rare boost) rewrite
//! individual cycles. The **rare-condition boost** is the operator the
//! paper's motivation calls for: it forces several designated rare choice
//! values into one short window, composing exactly the conjunctions
//! uniform random stimulus almost never reaches.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::Seq;

/// Marks one choice value as "rare" for the rare-condition boost (for the
/// PP: cache miss, victim dirty, same-line conflict, interface not
/// ready).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RareSpec {
    /// Index of the choice input (position in `model.choices()`).
    pub choice: usize,
    /// The rare value of that choice.
    pub value: u64,
}

/// Everything the operators need to know about the model's choice space.
#[derive(Debug, Clone)]
pub struct MutationCtx {
    /// Domain size of each choice input, in model order.
    pub sizes: Vec<u64>,
    /// Designated rare choice values (may be empty).
    pub rare: Vec<RareSpec>,
    /// Hard cap on mutated sequence length.
    pub max_len: usize,
}

impl MutationCtx {
    /// Decodes a packed cycle code into one value per choice (mixed
    /// radix, first choice least significant — matches
    /// [`archval_fsm::Model::decode_choices`]).
    #[must_use]
    pub fn decode(&self, mut code: u64) -> Vec<u64> {
        self.sizes
            .iter()
            .map(|&s| {
                let v = code % s;
                code /= s;
                v
            })
            .collect()
    }

    /// Re-encodes per-choice values into a packed cycle code.
    #[must_use]
    pub fn encode(&self, values: &[u64]) -> u64 {
        debug_assert_eq!(values.len(), self.sizes.len());
        let mut code = 0u64;
        for (&s, &v) in self.sizes.iter().zip(values).rev() {
            debug_assert!(v < s);
            code = code * s + v;
        }
        code
    }

    /// Draws one uniformly random cycle code.
    pub fn random_code(&self, rng: &mut StdRng) -> u64 {
        let values: Vec<u64> = self.sizes.iter().map(|&s| rng.gen_range(0..s)).collect();
        self.encode(&values)
    }

    /// Draws a random sequence of `len` cycles.
    pub fn random_seq(&self, rng: &mut StdRng, len: usize) -> Seq {
        (0..len).map(|_| self.random_code(rng)).collect()
    }

    /// Draws a fresh continuation tail of 1..=`max_tail` cycles for an
    /// extension candidate: random codes, with the rare-condition boost
    /// applied to a window about half the time.
    pub fn fresh_tail(&self, rng: &mut StdRng, max_tail: usize) -> Seq {
        let len = rng.gen_range(1..=max_tail.max(1));
        let mut tail = self.random_seq(rng, len);
        if !self.rare.is_empty() && rng.gen_bool(0.1) {
            rare_boost(rng, self, &mut tail);
        }
        tail
    }
}

/// Rewrites one random choice of one random cycle to a fresh value.
fn flip_choice(rng: &mut StdRng, ctx: &MutationCtx, seq: &mut Seq) {
    if seq.is_empty() {
        return;
    }
    let cycle = rng.gen_range(0..seq.len());
    let choice = rng.gen_range(0..ctx.sizes.len());
    let mut values = ctx.decode(seq[cycle]);
    values[choice] = rng.gen_range(0..ctx.sizes[choice]);
    seq[cycle] = ctx.encode(&values);
}

/// Forces a small conjunction of designated rare values into a short
/// window.
///
/// Deliberately forces only 1–3 of the rare specs, not all of them: the
/// arcs worth reaching sit at conjunctions of a *few* rare conditions,
/// while forcing every interface into its rare state at once just stalls
/// the machine in place.
fn rare_boost(rng: &mut StdRng, ctx: &MutationCtx, seq: &mut Seq) {
    if seq.is_empty() {
        return;
    }
    if ctx.rare.is_empty() {
        // no rare spec: degrade to a burst of flips
        for _ in 0..4 {
            flip_choice(rng, ctx, seq);
        }
        return;
    }
    let picks = rng.gen_range(1..=ctx.rare.len().min(3));
    let chosen: Vec<RareSpec> =
        (0..picks).map(|_| ctx.rare[rng.gen_range(0..ctx.rare.len())]).collect();
    let start = rng.gen_range(0..seq.len());
    let window = rng.gen_range(1..=8usize.min(seq.len() - start));
    for code in &mut seq[start..start + window] {
        let mut values = ctx.decode(*code);
        for spec in &chosen {
            // each rare value lands with high, not certain, probability so
            // boosted windows still vary
            if rng.gen_bool(0.75) {
                values[spec.choice] = spec.value;
            }
        }
        *code = ctx.encode(&values);
    }
}

/// Cuts the sequence at a random point (keeps at least one cycle).
fn truncate(rng: &mut StdRng, seq: &mut Seq) {
    if seq.len() > 1 {
        let keep = rng.gen_range(1..seq.len());
        seq.truncate(keep);
    }
}

/// Appends fresh random cycles (exploration past the parent's horizon).
fn extend(rng: &mut StdRng, ctx: &MutationCtx, seq: &mut Seq) {
    let room = ctx.max_len.saturating_sub(seq.len());
    if room == 0 {
        return;
    }
    let add = rng.gen_range(1..=room.min(16));
    for _ in 0..add {
        seq.push(ctx.random_code(rng));
    }
}

/// Replaces the tail with a suffix of another corpus entry.
fn splice(rng: &mut StdRng, ctx: &MutationCtx, seq: &mut Seq, other: &[u64]) {
    if seq.is_empty() || other.is_empty() {
        return;
    }
    let cut = rng.gen_range(0..seq.len());
    let from = rng.gen_range(0..other.len());
    seq.truncate(cut);
    seq.extend_from_slice(&other[from..]);
    seq.truncate(ctx.max_len);
    if seq.is_empty() {
        seq.push(other[from]);
    }
}

/// Derives one mutated child from `parent` (and optionally a second
/// corpus sequence for splicing). Applies one weighted-random operator,
/// or a stacked havoc burst.
///
/// The returned sequence always has between 1 and `ctx.max_len` cycles.
pub fn mutate(rng: &mut StdRng, ctx: &MutationCtx, parent: &[u64], other: Option<&[u64]>) -> Seq {
    let mut seq: Seq = parent.to_vec();
    seq.truncate(ctx.max_len);
    if seq.is_empty() {
        return ctx.random_seq(rng, 1);
    }
    match rng.gen_range(0..10u32) {
        0..=2 => flip_choice(rng, ctx, &mut seq),
        3..=4 => rare_boost(rng, ctx, &mut seq),
        5 => truncate(rng, &mut seq),
        6..=7 => extend(rng, ctx, &mut seq),
        8 => match other {
            Some(o) => splice(rng, ctx, &mut seq, o),
            None => extend(rng, ctx, &mut seq),
        },
        _ => {
            // havoc: a stacked burst of the cheap operators
            for _ in 0..rng.gen_range(2..=8) {
                match rng.gen_range(0..4u32) {
                    0..=1 => flip_choice(rng, ctx, &mut seq),
                    2 => rare_boost(rng, ctx, &mut seq),
                    _ => extend(rng, ctx, &mut seq),
                }
            }
        }
    }
    debug_assert!(!seq.is_empty() && seq.len() <= ctx.max_len);
    seq
}

/// A deterministic unit draw in `[0, 1)` (the vendored rand has no `f64`
/// `Standard` impl; this mirrors its `gen_bool` granularity).
pub fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> MutationCtx {
        MutationCtx {
            sizes: vec![5, 2, 2, 2],
            rare: vec![RareSpec { choice: 1, value: 0 }, RareSpec { choice: 3, value: 1 }],
            max_len: 64,
        }
    }

    #[test]
    fn decode_encode_round_trips() {
        let c = ctx();
        for code in 0..(5 * 2 * 2 * 2) {
            assert_eq!(c.encode(&c.decode(code)), code);
        }
    }

    #[test]
    fn mutants_stay_in_bounds() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let parent = c.random_seq(&mut rng, 32);
        let other = c.random_seq(&mut rng, 16);
        for _ in 0..500 {
            let m = mutate(&mut rng, &c, &parent, Some(&other));
            assert!(!m.is_empty() && m.len() <= c.max_len);
            for &code in &m {
                assert!(code < 5 * 2 * 2 * 2, "code {code} out of the choice space");
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let c = ctx();
        let parent: Seq = (0..20).map(|i| i % 40).collect();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(mutate(&mut a, &c, &parent, None), mutate(&mut b, &c, &parent, None));
        }
    }

    #[test]
    fn rare_boost_composes_rare_values() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        // an all-common parent: choice 1 = 1, choice 3 = 0
        let common = c.encode(&[0, 1, 0, 0]);
        let parent: Seq = vec![common; 16];
        let mut both_rare_seen = false;
        for _ in 0..200 {
            let mut seq = parent.clone();
            rare_boost(&mut rng, &c, &mut seq);
            for &code in &seq {
                let v = c.decode(code);
                if v[1] == 0 && v[3] == 1 {
                    both_rare_seen = true;
                }
            }
        }
        assert!(both_rare_seen, "the boost never composed both rare values");
    }

    #[test]
    fn unit_f64_is_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let u = unit_f64(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
