//! Incremental construction of a [`StateGraph`].
//!
//! The builder replaces the old `Vec<Vec<Edge>>` adjacency (one heap
//! allocation per state, O(out-degree) duplicate scan per insert) with
//! flat append-only arrays and hashed dedup.
//!
//! Both enumerators emit edges with nondecreasing source ids — the
//! sequential cursor walks states in id order and the parallel merge
//! processes frontier chunks in order — so the common case is the
//! *sorted fast path*: edges land in CSR order as appended, dedup needs
//! only a per-source scratch set (cleared each time the source advances),
//! and [`finish`](GraphBuilder::finish) is zero-copy. If a caller inserts
//! a source lower than the open one, the builder transparently spills to
//! a general mode (global dedup set, counting-sort in `finish`), so
//! hand-built test graphs in any order still work.

use std::collections::HashSet;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::csr::{CsrData, EdgeLabel, EdgePolicy, StateGraph, StateId};
use crate::error::GraphError;

/// Construction metrics reported by [`GraphBuilder::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of states in the finished graph.
    pub states: u64,
    /// Number of recorded edges.
    pub edges: u64,
    /// Edges rejected as duplicates under the edge policy.
    pub suppressed_duplicates: u64,
    /// Whether every insert hit the sorted fast path (no spill).
    pub sorted_input: bool,
    /// Approximate peak heap footprint of the builder itself, in bytes
    /// (capacity-based; includes the dedup sets).
    pub builder_peak_bytes: u64,
    /// Size of the finished CSR arrays in bytes.
    pub graph_bytes: u64,
    /// Wall time spent inside `finish()` (offset build plus any
    /// counting sort).
    pub finish_seconds: f64,
}

struct Unsorted {
    /// Source of each appended edge, parallel to `dst`/`label`.
    srcs: Vec<u32>,
    /// Global dedup set over `(src, dst, key)`.
    seen: HashSet<(u32, u32, EdgeLabel)>,
}

/// Builds a [`StateGraph`] from a stream of edges, deduplicating per the
/// configured [`EdgePolicy`].
pub struct GraphBuilder {
    policy: EdgePolicy,
    /// Out-degree per state; also defines the state count.
    out_count: Vec<u32>,
    dst: Vec<u32>,
    label: Vec<EdgeLabel>,
    /// `None` while all inserts have had nondecreasing sources.
    unsorted: Option<Unsorted>,
    /// The source currently being appended to (sorted mode only).
    open_src: u32,
    /// Dedup set for `open_src`'s edges: `(dst, key)`.
    scratch: HashSet<(u32, EdgeLabel)>,
    /// The `(src, dst, key)` of the most recent insert. Choice sweeps
    /// emit long runs of the same arc, so matching the previous triple
    /// proves the edge is already in the dedup set without hashing.
    last: Option<(u32, u32, EdgeLabel)>,
    suppressed: u64,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new(policy: EdgePolicy) -> Self {
        GraphBuilder {
            policy,
            out_count: Vec::new(),
            dst: Vec::new(),
            label: Vec::new(),
            unsorted: None,
            open_src: 0,
            scratch: HashSet::new(),
            last: None,
            suppressed: 0,
        }
    }

    /// The edge policy this builder deduplicates under.
    pub fn policy(&self) -> EdgePolicy {
        self.policy
    }

    /// Number of states seen so far.
    pub fn state_count(&self) -> usize {
        self.out_count.len()
    }

    /// Number of edges recorded so far.
    pub fn edge_count(&self) -> usize {
        self.dst.len()
    }

    /// Ensures state `s` exists (and all lower-numbered states), without
    /// adding any edges.
    pub fn ensure_state(&mut self, s: StateId) {
        let hi = s.0 as usize + 1;
        if hi > self.out_count.len() {
            self.out_count.resize(hi, 0);
        }
    }

    /// Pre-sizes the per-state bookkeeping for `states` total states.
    /// Enumerators call this with the known frontier bound per level so
    /// the out-degree array grows once instead of per `add_edge`.
    pub fn reserve_states(&mut self, states: usize) {
        if states > self.out_count.len() {
            self.out_count.reserve(states - self.out_count.len());
        }
    }

    /// Pre-sizes the edge arrays for `edges` additional edges.
    pub fn reserve_edges(&mut self, edges: usize) {
        self.dst.reserve(edges);
        self.label.reserve(edges);
    }

    /// Adds an edge under the builder's policy. Returns `true` if the edge
    /// was recorded (i.e. it was not suppressed as a duplicate arc label).
    pub fn add_edge(&mut self, src: StateId, dst: StateId, label: EdgeLabel) -> bool {
        let (s, d) = (src.0, dst.0);
        let hi = s.max(d) as usize + 1;
        if hi > self.out_count.len() {
            self.out_count.resize(hi, 0);
        }
        let key = match self.policy {
            EdgePolicy::AllLabels => label,
            EdgePolicy::FirstLabel => 0,
        };
        // A repeat of the immediately preceding triple is already in the
        // dedup set (it was inserted or matched there last call), so it
        // can be suppressed without touching the hash.
        if self.last == Some((s, d, key)) {
            self.suppressed += 1;
            return false;
        }
        self.last = Some((s, d, key));
        if self.unsorted.is_none() {
            if self.dst.is_empty() || s > self.open_src {
                self.open_src = s;
                self.scratch.clear();
            } else if s < self.open_src {
                self.spill_to_unsorted();
            }
        }
        let fresh = match &mut self.unsorted {
            Some(u) => u.seen.insert((s, d, key)),
            None => self.scratch.insert((d, key)),
        };
        if !fresh {
            self.suppressed += 1;
            return false;
        }
        self.out_count[s as usize] += 1;
        self.dst.push(d);
        self.label.push(label);
        if let Some(u) = &mut self.unsorted {
            u.srcs.push(s);
        }
        true
    }

    /// Records `n` duplicate-arc suppressions without replaying the
    /// suppressed `add_edge` calls.
    ///
    /// This is the splice hook for incremental re-enumeration: a clean
    /// reference row is replayed as its *recorded* edges only, and the
    /// choice codes a full sweep would have evaluated and suppressed
    /// between them are accounted here in bulk, so the finished
    /// [`GraphStats::suppressed_duplicates`] matches a full enumeration
    /// exactly. Suppressed calls have no other effect on builder state,
    /// which is what makes the bulk form equivalent.
    pub fn note_suppressed(&mut self, n: u64) {
        self.suppressed += n;
    }

    /// Leaves the sorted fast path: reconstructs per-edge sources (valid
    /// because sorted-mode sources were nondecreasing, so repeating each
    /// state `out_count[s]` times in id order reproduces insertion order)
    /// and seeds the global dedup set from the edges appended so far.
    fn spill_to_unsorted(&mut self) {
        let m = self.dst.len();
        let mut srcs = Vec::with_capacity(m + 1);
        for (s, &c) in self.out_count.iter().enumerate() {
            for _ in 0..c {
                srcs.push(s as u32);
            }
        }
        debug_assert_eq!(srcs.len(), m);
        let mut seen = HashSet::with_capacity(m * 2);
        for ((&s, &d), &l) in srcs.iter().zip(&self.dst).zip(&self.label) {
            let key = match self.policy {
                EdgePolicy::AllLabels => l,
                EdgePolicy::FirstLabel => 0,
            };
            seen.insert((s, d, key));
        }
        self.scratch.clear();
        self.unsorted = Some(Unsorted { srcs, seen });
    }

    fn approx_builder_bytes(&self) -> u64 {
        use std::mem::size_of;
        // hashbrown keeps ~1 control byte per slot alongside the entries
        fn set_bytes(capacity: usize, entry: usize) -> usize {
            capacity * (entry + 1)
        }
        let mut b = self.out_count.capacity() * size_of::<u32>()
            + self.dst.capacity() * size_of::<u32>()
            + self.label.capacity() * size_of::<EdgeLabel>()
            + set_bytes(self.scratch.capacity(), size_of::<(u32, EdgeLabel)>());
        if let Some(u) = &self.unsorted {
            b += u.srcs.capacity() * size_of::<u32>()
                + set_bytes(u.seen.capacity(), size_of::<(u32, u32, EdgeLabel)>());
        }
        b as u64
    }

    /// Seals the builder into an immutable CSR [`StateGraph`].
    ///
    /// On the sorted fast path this is zero-copy (the edge arrays are
    /// already in CSR order); otherwise the edges are counting-sorted by
    /// source. Returns [`GraphError`] if the state or edge count exceeds
    /// the `u32` index range of the CSR arrays.
    pub fn finish(self) -> Result<(StateGraph, GraphStats), GraphError> {
        let t0 = Instant::now();
        let builder_peak_bytes = self.approx_builder_bytes();
        let GraphBuilder { out_count, dst, label, unsorted, suppressed, .. } = self;
        let n = out_count.len();
        check_state_count(n)?;
        let row = row_offsets(&out_count)?;
        let sorted_input = unsorted.is_none();
        let (dst, label) = match unsorted {
            None => (dst, label),
            Some(u) => {
                let m = dst.len();
                let mut ndst = vec![0u32; m];
                let mut nlabel = vec![0u64; m];
                let mut cursor: Vec<u32> = row[..n].to_vec();
                for i in 0..m {
                    let c = &mut cursor[u.srcs[i] as usize];
                    ndst[*c as usize] = dst[i];
                    nlabel[*c as usize] = label[i];
                    *c += 1;
                }
                (ndst, nlabel)
            }
        };
        let graph = StateGraph::from_data(CsrData { row, dst, label });
        let stats = GraphStats {
            states: n as u64,
            edges: graph.edge_count() as u64,
            suppressed_duplicates: suppressed,
            sorted_input,
            builder_peak_bytes,
            graph_bytes: graph.approx_bytes() as u64,
            finish_seconds: t0.elapsed().as_secs_f64(),
        };
        Ok((graph, stats))
    }
}

/// Rejects state counts outside the `u32` id range.
fn check_state_count(states: usize) -> Result<(), GraphError> {
    if states > u32::MAX as usize {
        return Err(GraphError::TooManyStates { states });
    }
    Ok(())
}

/// Prefix-sums per-state out-degrees into CSR row offsets, detecting
/// `u32` overflow of the running edge count (the accumulator is `u64`, so
/// no wrap happens before the check).
fn row_offsets(counts: &[u32]) -> Result<Vec<u32>, GraphError> {
    let mut row = Vec::with_capacity(counts.len() + 1);
    let mut acc: u64 = 0;
    row.push(0u32);
    for &c in counts {
        acc += c as u64;
        let off = u32::try_from(acc).map_err(|_| GraphError::TooManyEdges { edges: acc })?;
        row.push(off);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Edge;

    fn first(g: &StateGraph, s: StateId) -> Edge {
        g.edges(s).iter().next().unwrap()
    }

    #[test]
    fn first_label_suppresses_aliased_conditions() {
        let mut b = GraphBuilder::new(EdgePolicy::FirstLabel);
        assert!(b.add_edge(StateId(0), StateId(1), 7));
        assert!(!b.add_edge(StateId(0), StateId(1), 9));
        let (g, stats) = b.finish().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(first(&g, StateId(0)).label, 7);
        assert_eq!(stats.suppressed_duplicates, 1);
        assert!(stats.sorted_input);
    }

    #[test]
    fn all_labels_keeps_aliased_conditions() {
        let mut b = GraphBuilder::new(EdgePolicy::AllLabels);
        assert!(b.add_edge(StateId(0), StateId(1), 7));
        assert!(b.add_edge(StateId(0), StateId(1), 9));
        assert!(!b.add_edge(StateId(0), StateId(1), 7));
        let (g, stats) = b.finish().unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(stats.suppressed_duplicates, 1);
    }

    #[test]
    fn unsorted_insertion_matches_sorted() {
        let edges = [(0u32, 1u32, 10u64), (0, 2, 11), (1, 2, 12), (2, 0, 13)];
        let mut sorted = GraphBuilder::new(EdgePolicy::AllLabels);
        for &(s, d, l) in &edges {
            sorted.add_edge(StateId(s), StateId(d), l);
        }
        let (gs, ss) = sorted.finish().unwrap();
        assert!(ss.sorted_input);
        // same edges, interleaved so sources go backwards
        let mut shuffled = GraphBuilder::new(EdgePolicy::AllLabels);
        for &i in &[0usize, 2, 1, 3] {
            let (s, d, l) = edges[i];
            shuffled.add_edge(StateId(s), StateId(d), l);
        }
        let (gu, su) = shuffled.finish().unwrap();
        assert!(!su.sorted_input);
        assert_eq!(gs, gu);
        assert_eq!(gs.row(), &[0, 2, 3, 4]);
    }

    #[test]
    fn duplicates_detected_across_a_spill() {
        let mut b = GraphBuilder::new(EdgePolicy::FirstLabel);
        assert!(b.add_edge(StateId(0), StateId(1), 5));
        assert!(b.add_edge(StateId(1), StateId(0), 6));
        // going back to source 0 forces the spill; the arc added before
        // the spill must still count as a duplicate
        assert!(!b.add_edge(StateId(0), StateId(1), 99));
        assert!(b.add_edge(StateId(0), StateId(2), 7));
        let (g, stats) = b.finish().unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(stats.suppressed_duplicates, 1);
        assert!(!stats.sorted_input);
        // per-source discovery order is preserved by the counting sort
        let out: Vec<Edge> = g.edges(StateId(0)).iter().collect();
        assert_eq!(out[0], Edge { dst: StateId(1), label: 5 });
        assert_eq!(out[1], Edge { dst: StateId(2), label: 7 });
    }

    #[test]
    fn ensure_state_creates_isolated_states() {
        let mut b = GraphBuilder::new(EdgePolicy::FirstLabel);
        b.ensure_state(StateId(2)); // states 0..=2, no edges
        let (g, _) = b.finish().unwrap();
        assert_eq!(g.state_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(StateId(1)), 0);
    }

    #[test]
    fn empty_builder_finishes_to_empty_graph() {
        let (g, stats) = GraphBuilder::new(EdgePolicy::FirstLabel).finish().unwrap();
        assert_eq!(g.state_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(stats.states, 0);
        assert!(stats.sorted_input);
    }

    #[test]
    fn reserve_does_not_change_results() {
        let mut a = GraphBuilder::new(EdgePolicy::FirstLabel);
        let mut b = GraphBuilder::new(EdgePolicy::FirstLabel);
        b.reserve_states(100);
        b.reserve_edges(100);
        for builder in [&mut a, &mut b] {
            builder.add_edge(StateId(0), StateId(1), 1);
            builder.add_edge(StateId(1), StateId(2), 2);
        }
        assert_eq!(a.finish().unwrap().0, b.finish().unwrap().0);
    }

    #[test]
    fn state_count_overflow_is_a_typed_error() {
        assert_eq!(check_state_count(u32::MAX as usize), Ok(()));
        assert_eq!(
            check_state_count(u32::MAX as usize + 1),
            Err(GraphError::TooManyStates { states: u32::MAX as usize + 1 })
        );
    }

    #[test]
    fn edge_count_overflow_is_a_typed_error() {
        // two states whose combined out-degree exceeds u32::MAX — the
        // offsets must fail typed rather than wrap
        let counts = [u32::MAX, 2];
        match row_offsets(&counts) {
            Err(GraphError::TooManyEdges { edges }) => {
                assert_eq!(edges, u32::MAX as u64 + 2);
            }
            other => panic!("expected TooManyEdges, got {other:?}"),
        }
        // and the boundary itself is fine
        let ok = row_offsets(&[u32::MAX]).unwrap();
        assert_eq!(ok, vec![0, u32::MAX]);
    }

    #[test]
    fn stats_report_sizes() {
        let mut b = GraphBuilder::new(EdgePolicy::FirstLabel);
        b.add_edge(StateId(0), StateId(1), 0);
        b.add_edge(StateId(1), StateId(0), 0);
        let (g, stats) = b.finish().unwrap();
        assert_eq!(stats.states, 2);
        assert_eq!(stats.edges, 2);
        assert_eq!(stats.graph_bytes, g.approx_bytes() as u64);
        assert!(stats.builder_peak_bytes > 0);
        assert!(stats.finish_seconds >= 0.0);
    }
}
