//! Textual (de)serialisation of choice-code sequences.
//!
//! A fuzzing corpus entry, a failing candidate, or any other stimulus
//! expressed as packed choice codes can be written to a small
//! line-oriented text file and replayed later — the persistence format
//! behind corpus minimisation and failure reproduction. The format is
//! deliberately trivial:
//!
//! ```text
//! # archval-seq v1
//! 1a2
//! 0
//! 27f
//! ```
//!
//! One lowercase-hex code per line; blank lines and `#` comments are
//! ignored. [`parse_seq`] accepts any hex case and surplus whitespace, so
//! hand-edited files replay fine, and every error carries the 1-based
//! line number it occurred on.

use std::fmt;

/// The header comment [`emit_seq`] writes (parsers ignore it like any
/// other comment; it exists for humans and `file(1)`).
pub const SEQ_HEADER: &str = "# archval-seq v1";

/// Serialises a choice-code sequence to the textual format.
#[must_use]
pub fn emit_seq(seq: &[u64]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(SEQ_HEADER.len() + 1 + seq.len() * 5);
    s.push_str(SEQ_HEADER);
    s.push('\n');
    for code in seq {
        let _ = writeln!(s, "{code:x}");
    }
    s
}

/// A [`parse_seq`] failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqParseError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// The offending token.
    pub token: String,
}

impl fmt::Display for SeqParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {:?} is not a hex choice code", self.line, self.token)
    }
}

impl std::error::Error for SeqParseError {}

/// Parses the textual format back into a choice-code sequence.
///
/// # Errors
///
/// Returns [`SeqParseError`] (with the 1-based line number) for any line
/// that is neither blank, a `#` comment, nor a hex integer that fits in
/// `u64`.
pub fn parse_seq(text: &str) -> Result<Vec<u64>, SeqParseError> {
    let mut seq = Vec::new();
    for (ix, line) in text.lines().enumerate() {
        let token = line.trim();
        if token.is_empty() || token.starts_with('#') {
            continue;
        }
        let code = u64::from_str_radix(token, 16)
            .map_err(|_| SeqParseError { line: ix + 1, token: token.to_owned() })?;
        seq.push(code);
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn emit_starts_with_the_header() {
        assert!(emit_seq(&[1, 2, 3]).starts_with(SEQ_HEADER));
        assert_eq!(parse_seq(&emit_seq(&[])), Ok(vec![]));
    }

    #[test]
    fn parse_accepts_comments_blanks_and_mixed_case() {
        let text = "# corpus entry 7\n\n  1A\nff\n\n# trailing note\n0\n";
        assert_eq!(parse_seq(text), Ok(vec![0x1A, 0xFF, 0]));
    }

    #[test]
    fn parse_reports_the_offending_line() {
        let err = parse_seq("# ok\n12\nnot-hex\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.token, "not-hex");
        assert!(err.to_string().contains("line 3"));
        // overflow is an error too, not a silent wrap
        assert!(parse_seq("1ffffffffffffffff\n").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Round trip: any sequence survives emit → parse unchanged.
        #[test]
        fn emit_parse_round_trips(seq in proptest::collection::vec(any::<u64>(), 0..300)) {
            prop_assert_eq!(parse_seq(&emit_seq(&seq)).unwrap(), seq);
        }

        /// Emitted files are stable: re-emitting a parsed file is
        /// byte-identical (the format has one canonical form).
        #[test]
        fn emission_is_canonical(seq in proptest::collection::vec(any::<u64>(), 0..100)) {
            let once = emit_seq(&seq);
            let twice = emit_seq(&parse_seq(&once).unwrap());
            prop_assert_eq!(once, twice);
        }
    }
}
