//! Differential equivalence: the compiled [`StepProgram`] must be
//! bit-identical to the tree-walking [`Evaluator`] — same successor for
//! every `(state, choices)` pair and a `DivisionByZero` failure on
//! exactly the same inputs — over randomly generated models exercising
//! every operator, `Ternary`/`Select` nesting, shared definitions and
//! fallible `Mod` nodes.

use archval_exec::StepProgram;
use archval_fsm::builder::ModelBuilder;
use archval_fsm::engine::StepEngine;
use archval_fsm::enumerate::{enumerate, enumerate_with, EnumConfig};
use archval_fsm::eval::Evaluator;
use archval_fsm::expr::BinaryOp;
use archval_fsm::{dump_enum_result, ExprId, Model};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BINOPS: [BinaryOp; 17] = [
    BinaryOp::And,
    BinaryOp::Or,
    BinaryOp::BitAnd,
    BinaryOp::BitOr,
    BinaryOp::BitXor,
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Mod,
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::Shl,
    BinaryOp::Shr,
];

/// Builds a random small model from `seed`. Every operator can appear,
/// including `Mod` with arbitrary (sometimes zero, sometimes fallible)
/// divisors, guarded and unguarded `Ternary`/`Select` nests, and
/// definitions shared between next-state functions.
fn random_model(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ModelBuilder::new("random");

    let n_choices = rng.gen_range(0..=3usize);
    let choices: Vec<_> =
        (0..n_choices).map(|i| b.choice(format!("c{i}"), rng.gen_range(2..=4u64))).collect();
    let n_vars = rng.gen_range(1..=4usize);
    let vars: Vec<_> = (0..n_vars)
        .map(|i| {
            let size = rng.gen_range(2..=9u64);
            let init = rng.gen_range(0..size);
            b.state_var(format!("v{i}"), size, init)
        })
        .collect();

    // terminal pool: constants (zero included, deliberately, so Mod can
    // fail), current-state reads and choice reads
    let mut pool: Vec<ExprId> = Vec::new();
    for k in [0u64, 1, 2, 3, 7, u64::MAX] {
        pool.push(b.constant(k));
    }
    for &v in &vars {
        pool.push(b.var_expr(v));
    }
    for &c in &choices {
        pool.push(b.choice_expr(c));
    }

    let n_nodes = rng.gen_range(5..=30usize);
    for i in 0..n_nodes {
        let pick = |rng: &mut StdRng, pool: &Vec<ExprId>| pool[rng.gen_range(0..pool.len())];
        let node = match rng.gen_range(0..10u32) {
            0 => b.not(pick(&mut rng, &pool)),
            1 => b.bit_not(pick(&mut rng, &pool)),
            2..=5 => {
                let op = BINOPS[rng.gen_range(0..BINOPS.len())];
                b.binary(op, pick(&mut rng, &pool), pick(&mut rng, &pool))
            }
            6 | 7 => b.ternary(pick(&mut rng, &pool), pick(&mut rng, &pool), pick(&mut rng, &pool)),
            8 => {
                let arms = (0..rng.gen_range(1..=3usize))
                    .map(|_| (pick(&mut rng, &pool), pick(&mut rng, &pool)))
                    .collect();
                b.select(arms, pick(&mut rng, &pool))
            }
            _ => {
                let d = b.def(format!("d{i}"), pick(&mut rng, &pool));
                b.def_expr(d)
            }
        };
        pool.push(node);
    }

    for &v in &vars {
        let next = pool[rng.gen_range(0..pool.len())];
        b.set_next(v, next);
    }
    b.build().expect("random model must build")
}

/// One random in-domain (state, choices) pair for `model`.
fn random_inputs(model: &Model, rng: &mut StdRng) -> (Vec<u64>, Vec<u64>) {
    let state = model.vars().iter().map(|v| rng.gen_range(0..v.size)).collect();
    let choices = model.choices().iter().map(|c| rng.gen_range(0..c.size)).collect();
    (state, choices)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn compiled_step_matches_tree_step(seed in proptest::any::<u64>()) {
        let model = random_model(seed);
        let program = StepProgram::compile(&model);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_EE0D);
        let mut tree = Evaluator::new(&model);
        let mut engine = archval_exec::CompiledEngine::new(&program);
        let mut tree_out = vec![0u64; model.vars().len()];
        let mut comp_out = vec![0u64; model.vars().len()];
        for case in 0..32 {
            let (state, choices) = random_inputs(&model, &mut rng);
            let want = tree.next_state(&state, &choices, &mut tree_out);
            let got = engine.step(&state, &choices, &mut comp_out);
            prop_assert_eq!(
                &got, &want,
                "error disagreement seed {} case {} state {:?} choices {:?}",
                seed, case, &state, &choices
            );
            if want.is_ok() {
                prop_assert_eq!(
                    &comp_out, &tree_out,
                    "value disagreement seed {} case {} state {:?} choices {:?}",
                    seed, case, &state, &choices
                );
            }
        }
    }

    #[test]
    fn prefix_reuse_across_choice_sweeps_matches_tree(seed in proptest::any::<u64>()) {
        // exercise the enumerator's access pattern: one begin_state, many
        // step_choices against the same state
        let model = random_model(seed);
        let program = StepProgram::compile(&model);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
        let mut tree = Evaluator::new(&model);
        let mut engine = archval_exec::CompiledEngine::new(&program);
        let mut tree_out = vec![0u64; model.vars().len()];
        let mut comp_out = vec![0u64; model.vars().len()];
        let (state, _) = random_inputs(&model, &mut rng);
        engine.begin_state(&state).expect("prefix is infallible");
        let combos = model.choice_combinations().min(64);
        for code in 0..combos {
            let choices = model.decode_choices(code);
            let want = tree.next_state(&state, &choices, &mut tree_out);
            let got = engine.step_choices(&choices, &mut comp_out);
            prop_assert_eq!(&got, &want, "seed {} code {}", seed, code);
            if want.is_ok() {
                prop_assert_eq!(&comp_out, &tree_out, "seed {} code {}", seed, code);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_enumeration_is_byte_identical(seed in proptest::any::<u64>()) {
        let model = random_model(seed);
        let program = StepProgram::compile(&model);
        let config = EnumConfig { state_limit: 100_000, ..EnumConfig::default() };
        let tree = enumerate(&model, &config);
        let compiled = enumerate_with(&model, &config, &program);
        match (tree, compiled) {
            (Ok(t), Ok(c)) => {
                let t_dump = dump_enum_result(&model, &t);
                let c_dump = dump_enum_result(&model, &c);
                prop_assert_eq!(t_dump, c_dump, "dump mismatch for seed {}", seed);
            }
            (t, c) => prop_assert_eq!(
                t.err(), c.err(),
                "enumeration error disagreement for seed {}", seed
            ),
        }
    }
}

/// A hand-built model hitting the tricky lowering paths deterministically:
/// a `Mod` that only fails on the untaken branch of a `Ternary`, and one
/// inside a `Select` arm shadowed by an earlier guard.
#[test]
fn guarded_division_only_fails_when_demanded() {
    let mut b = ModelBuilder::new("guarded");
    let c = b.choice("c", 2);
    let v = b.state_var("x", 8, 1);
    let cur = b.var_expr(v);
    let ce = b.choice_expr(c);
    // x % c fails exactly when c == 0
    let risky = b.modulo(cur, ce);
    // guard: when c == 0, take the safe path — never demands `risky`
    let safe = b.add(cur, b.constant(1));
    let next = b.ternary(ce, risky, safe);
    b.set_next(v, next);
    let m = b.build().unwrap();
    let program = StepProgram::compile(&m);
    let mut tree = Evaluator::new(&m);
    let mut engine = archval_exec::CompiledEngine::new(&program);
    let mut t_out = [0u64];
    let mut c_out = [0u64];
    for state in 0..8u64 {
        for choice in 0..2u64 {
            let want = tree.next_state(&[state], &[choice], &mut t_out);
            let got = engine.step(&[state], &[choice], &mut c_out);
            assert!(want.is_ok(), "the guard makes every input safe");
            assert_eq!(got, want, "state {state} choice {choice}");
            assert_eq!(c_out, t_out, "state {state} choice {choice}");
        }
    }
}

#[test]
fn unconditional_division_by_zero_fails_in_both_engines() {
    let mut b = ModelBuilder::new("bad");
    let v = b.state_var("x", 4, 1);
    let cur = b.var_expr(v);
    let zero = b.constant(0);
    b.set_next(v, b.modulo(cur, zero));
    let m = b.build().unwrap();
    let program = StepProgram::compile(&m);
    let mut tree = Evaluator::new(&m);
    let mut engine = archval_exec::CompiledEngine::new(&program);
    let mut out = [0u64];
    let want = tree.next_state(&[1], &[], &mut out).unwrap_err();
    let got = engine.step(&[1], &[], &mut out).unwrap_err();
    assert_eq!(got, want);
}

/// The tree walker evaluates *every* definition whether referenced or
/// not, so a fallible unused definition must still fail under the
/// compiled engine (it may not be dead-code-eliminated).
#[test]
fn fallible_unused_definition_still_fails() {
    let mut b = ModelBuilder::new("deadmod");
    let c = b.choice("c", 2);
    let v = b.state_var("x", 4, 1);
    let cur = b.var_expr(v);
    let risky = b.modulo(cur, b.choice_expr(c));
    b.def("unused", risky);
    b.set_next(v, cur);
    let m = b.build().unwrap();
    let program = StepProgram::compile(&m);
    let mut tree = Evaluator::new(&m);
    let mut engine = archval_exec::CompiledEngine::new(&program);
    let mut t_out = [0u64];
    let mut c_out = [0u64];
    for choice in 0..2u64 {
        let want = tree.next_state(&[1], &[choice], &mut t_out);
        let got = engine.step(&[1], &[choice], &mut c_out);
        assert_eq!(got, want, "choice {choice}");
        assert_eq!(want.is_err(), choice == 0);
    }
}

/// Safe unused definitions, by contrast, are dead code: dropping them is
/// unobservable and the program should shrink.
#[test]
fn safe_unused_definition_is_eliminated() {
    let mut with_dead = ModelBuilder::new("m");
    let c = with_dead.choice("c", 2);
    let v = with_dead.state_var("x", 4, 0);
    let cur = with_dead.var_expr(v);
    let dead = with_dead.add(cur, with_dead.constant(3));
    let dead2 = with_dead.binary(BinaryOp::Mul, dead, with_dead.choice_expr(c));
    with_dead.def("unused", dead2);
    with_dead.set_next(v, cur);
    let m = with_dead.build().unwrap();
    let program = StepProgram::compile(&m);
    // only LoadVar + Store survive: the unused safe def is eliminated
    assert_eq!(program.stats().live_nodes, 1, "{:?}", program.stats());
}
