//! Re-exports of the shared state-graph types.
//!
//! The graph itself lives in [`archval_graph`]: one CSR representation
//! shared by enumeration, tour generation, coverage tracking, fuzzing and
//! snapshots. This module keeps the historical `archval_fsm::graph::*`
//! paths working for downstream crates.
//!
//! Edges carry the packed choice-combination code that caused the
//! transition. Under the paper's default policy only the *first* condition
//! discovered per `(src, dst)` arc is recorded ("only one is recorded to
//! become part of the state graph", Section 3.2); the
//! [`EdgePolicy::AllLabels`] policy records every distinct condition, the
//! fix the paper proposes in Section 4 for the missed-bug case of
//! Figure 4.2.

pub use archval_graph::{
    Edge, EdgeIx, EdgeLabel, EdgePolicy, GraphBuilder, GraphError, GraphStats, OutEdges,
    SnapshotError, StateGraph, StateId,
};
