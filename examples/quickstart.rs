//! Quickstart: validate a small annotated Verilog design end-to-end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Shows the three automated steps of the ISCA 1995 methodology on a tiny
//! bus-grant controller: translate the Verilog to an FSM model, enumerate
//! every control state reachable from reset, and generate transition tours
//! that exercise every control arc — then prints the Verilog
//! force/release vector file that would drive a simulator through them.

use archval::flow::ValidationFlow;

const BUS_ARBITER: &str = r#"
// A two-requester bus arbiter with a one-cycle turnaround state.
module arbiter(clk, reset, req0, req1, grant0, grant1);
  input clk, reset;
  input req0;   // archval: abstract
  input req1;   // archval: abstract
  output grant0, grant1;
  reg [1:0] state;   // 0 idle, 1 granted0, 2 granted1, 3 turnaround
  wire grant0, grant1;
  assign grant0 = state == 2'd1;
  assign grant1 = state == 2'd2;
  always @(posedge clk) begin
    if (reset) state <= 2'd0;
    else case (state)
      2'd0: begin
        if (req0) state <= 2'd1;
        else if (req1) state <= 2'd2;
      end
      2'd1: if (!req0) state <= 2'd3;
      2'd2: if (!req1) state <= 2'd3;
      default: state <= 2'd0;
    endcase
  end
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== archval quickstart: bus arbiter ==\n");

    let result = ValidationFlow::from_verilog(BUS_ARBITER, "arbiter")?.run()?;

    println!("{}\n", result.summary());
    println!(
        "state graph (Graphviz):\n{}",
        result.enumd.graph.to_dot(|s| {
            let v = result.enumd.state_values(s);
            format!("state={}", v[0])
        })
    );

    println!("vector file for trace 0:\n{}", result.force_file(0, "tb.arbiter"));

    assert!(result.tours.covers_all_arcs(&result.enumd.graph));
    println!(
        "every one of the {} control arcs is exercised by {} trace(s).",
        result.enumd.graph.edge_count(),
        result.tours.traces().len()
    );
    Ok(())
}
