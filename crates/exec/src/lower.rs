//! Lowering: one pass over the model's expression arena producing a
//! [`StepProgram`].
//!
//! The arena is already hash-consed by the model builder (structural CSE)
//! and ids are topologically ordered (children precede parents, and a
//! definition's expression precedes every `Def` node referencing it), so
//! the whole analysis runs as a single forward scan computing three
//! attributes per node:
//!
//! * **folded value** — constant folding, including pruning of `Ternary`
//!   branches and `Select` arms whose guards fold;
//! * **failure capability** — whether evaluating the node can raise
//!   `DivisionByZero` (a `Mod` whose divisor is not a nonzero constant,
//!   or any node demanding one). Only *safe* (non-failing) nodes may be
//!   evaluated eagerly/branch-free; fallible regions are lowered as
//!   short jump-guarded code so the compiled engine fails **iff** the
//!   tree walker's lazy evaluation would demand the failing node;
//! * **choice dependence** — whether the value can change between choice
//!   permutations against a fixed state. This drives the state-only
//!   prefix / choice-dependent suffix split.
//!
//! On top of folding, a value-numbering map over *resolved* operands
//! catches duplicates that only become structurally identical after
//! simplification, and dead-code elimination keeps just the nodes
//! demanded by the next-state roots — plus every fallible definition
//! root, because the tree walker evaluates all definitions
//! unconditionally and dropping a fallible one would change which inputs
//! error.

use std::collections::HashMap;

use archval_fsm::expr::{apply_binary, apply_unary, BinaryOp, Expr, UnaryOp};
use archval_fsm::Model;

use crate::program::{CompileStats, Instr, Op, StepProgram};

/// A resolved operand: either a compile-time constant or the
/// representative live node computing the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ref {
    Const(u64),
    Node(u32),
}

/// Per-node analysis result. `repr` is `Const` when the node folds and
/// otherwise names the representative node after aliasing/CSE.
#[derive(Debug, Clone, Copy)]
struct Info {
    repr: Ref,
    can_fail: bool,
    choice_dep: bool,
}

impl Info {
    fn constant(v: u64) -> Self {
        Info { repr: Ref::Const(v), can_fail: false, choice_dep: false }
    }
}

/// Simplified structure of a representative node, with operands resolved.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Form {
    Var(u32),
    Choice(u32),
    Unary(UnaryOp, Ref),
    Binary(BinaryOp, Ref, Ref),
    Ternary(Ref, Ref, Ref),
    Select(Vec<(Ref, Ref)>, Ref),
}

impl Form {
    fn for_each_ref(&self, mut f: impl FnMut(Ref)) {
        match self {
            Form::Var(_) | Form::Choice(_) => {}
            Form::Unary(_, a) => f(*a),
            Form::Binary(_, a, b) => {
                f(*a);
                f(*b);
            }
            Form::Ternary(c, t, o) => {
                f(*c);
                f(*t);
                f(*o);
            }
            Form::Select(arms, default) => {
                for (g, v) in arms {
                    f(*g);
                    f(*v);
                }
                f(*default);
            }
        }
    }
}

/// Compiles `model` into a [`StepProgram`].
///
/// The program is semantically exact: for every `(state, choices)` pair
/// it produces the same successor state as
/// [`Evaluator::next_state`](archval_fsm::eval::Evaluator::next_state),
/// and fails with `DivisionByZero` on exactly the same inputs.
pub fn compile(model: &Model) -> StepProgram {
    let analysis = analyze(model);
    emit(model, analysis)
}

struct Analysis {
    info: Vec<Info>,
    forms: Vec<Option<Form>>,
    live: Vec<bool>,
    /// Fallible definition roots (representatives, in definition order)
    /// that must be force-evaluated for error fidelity.
    forced_defs: Vec<u32>,
    /// Resolved next-state root per variable.
    var_roots: Vec<Ref>,
    stats: CompileStats,
}

fn analyze(model: &Model) -> Analysis {
    let exprs = model.exprs();
    let mut info: Vec<Info> = Vec::with_capacity(exprs.len());
    let mut forms: Vec<Option<Form>> = vec![None; exprs.len()];
    let mut value_numbers: HashMap<Form, u32> = HashMap::new();
    let mut stats = CompileStats { arena_nodes: exprs.len(), ..CompileStats::default() };

    // Single forward scan: ids are topological, so every operand's Info
    // exists by the time its consumer is visited.
    for (i, expr) in exprs.iter().enumerate() {
        let r = |id: archval_fsm::ExprId| info[id.0 as usize].repr;
        let fail = |id: archval_fsm::ExprId| info[id.0 as usize].can_fail;
        let dep = |id: archval_fsm::ExprId| info[id.0 as usize].choice_dep;
        let ref_info = |rf: Ref, can_fail: bool, choice_dep: bool| match rf {
            Ref::Const(v) => Info::constant(v),
            Ref::Node(_) => Info { repr: rf, can_fail, choice_dep },
        };

        let next = match expr {
            Expr::Const(v) => Info::constant(*v),
            Expr::Var(v) => {
                intern(Form::Var(v.0), i, false, false, &mut value_numbers, &mut forms, &mut stats)
            }
            Expr::Choice(c) => intern(
                Form::Choice(c.0),
                i,
                false,
                true,
                &mut value_numbers,
                &mut forms,
                &mut stats,
            ),
            // A Def reference reads the definition's already-computed
            // value: alias it to the definition root wholesale.
            Expr::Def(d) => info[model.defs()[d.0 as usize].expr.0 as usize],
            Expr::Unary(op, a) => match r(*a) {
                Ref::Const(av) => Info::constant(apply_unary(*op, av)),
                ra => intern(
                    Form::Unary(*op, ra),
                    i,
                    fail(*a),
                    dep(*a),
                    &mut value_numbers,
                    &mut forms,
                    &mut stats,
                ),
            },
            Expr::Binary(op, a, b) => {
                let (ra, rb) = (r(*a), r(*b));
                if let (Ref::Const(av), Ref::Const(bv)) = (ra, rb) {
                    match apply_binary(*op, av, bv) {
                        Some(v) => Info::constant(v),
                        // Mod by a constant zero: never folds, always
                        // fails when demanded. Lower it checked.
                        None => intern(
                            Form::Binary(*op, ra, rb),
                            i,
                            true,
                            false,
                            &mut value_numbers,
                            &mut forms,
                            &mut stats,
                        ),
                    }
                } else {
                    let divisor_fallible =
                        *op == BinaryOp::Mod && !matches!(rb, Ref::Const(bv) if bv != 0);
                    intern(
                        Form::Binary(*op, ra, rb),
                        i,
                        fail(*a) || fail(*b) || divisor_fallible,
                        dep(*a) || dep(*b),
                        &mut value_numbers,
                        &mut forms,
                        &mut stats,
                    )
                }
            }
            Expr::Ternary { cond, then, other } => match r(*cond) {
                // Constant condition: the node *is* the taken branch; the
                // untaken branch is never demanded through this node.
                Ref::Const(cv) => {
                    let taken = if cv != 0 { *then } else { *other };
                    ref_info(r(taken), fail(taken), dep(taken))
                }
                rc => {
                    // Both branches agree and the condition cannot fail:
                    // the condition's value is irrelevant.
                    if r(*then) == r(*other) && !fail(*cond) {
                        ref_info(r(*then), fail(*then), dep(*then))
                    } else {
                        intern(
                            Form::Ternary(rc, r(*then), r(*other)),
                            i,
                            fail(*cond) || fail(*then) || fail(*other),
                            dep(*cond) || dep(*then) || dep(*other),
                            &mut value_numbers,
                            &mut forms,
                            &mut stats,
                        )
                    }
                }
            },
            Expr::Select { arms, default } => {
                // Prune arms whose guards fold: a constant-false guard
                // drops the arm, a constant-true guard becomes the new
                // default and cuts everything after it.
                let mut pruned: Vec<(Ref, Ref)> = Vec::new();
                let mut new_default = r(*default);
                let mut def_fail = fail(*default);
                let mut def_dep = dep(*default);
                for (g, v) in arms {
                    match r(*g) {
                        Ref::Const(0) => continue,
                        Ref::Const(_) => {
                            new_default = r(*v);
                            def_fail = fail(*v);
                            def_dep = dep(*v);
                            break;
                        }
                        rg => pruned.push((rg, r(*v))),
                    }
                }
                if pruned.is_empty() {
                    ref_info(new_default, def_fail, def_dep)
                } else {
                    let mut can_fail = def_fail;
                    let mut choice_dep = def_dep;
                    for &(g, v) in &pruned {
                        can_fail |= rfail(&info, g) || rfail(&info, v);
                        choice_dep |= rdep(&info, g) || rdep(&info, v);
                    }
                    intern(
                        Form::Select(pruned, new_default),
                        i,
                        can_fail,
                        choice_dep,
                        &mut value_numbers,
                        &mut forms,
                        &mut stats,
                    )
                }
            }
        };
        if !matches!(expr, Expr::Const(_)) && matches!(next.repr, Ref::Const(_)) {
            stats.folded += 1;
        }
        info.push(next);
    }

    // Roots: every variable's next-state expression, plus every fallible
    // definition root (the tree walker evaluates all definitions whether
    // used or not, so their failures are observable).
    let mut forced_defs = Vec::new();
    for d in model.defs() {
        if let Ref::Node(n) = info[d.expr.0 as usize].repr {
            if info[n as usize].can_fail && !forced_defs.contains(&n) {
                forced_defs.push(n);
            }
        }
    }
    let var_roots: Vec<Ref> = model.vars().iter().map(|v| info[v.next.0 as usize].repr).collect();

    // Liveness: demand-reachability from the roots over resolved forms.
    let mut live = vec![false; exprs.len()];
    let mut work: Vec<u32> = forced_defs.clone();
    for r in &var_roots {
        if let Ref::Node(n) = r {
            work.push(*n);
        }
    }
    while let Some(n) = work.pop() {
        if std::mem::replace(&mut live[n as usize], true) {
            continue;
        }
        forms[n as usize].as_ref().expect("live node must be a representative").for_each_ref(
            |rf| {
                if let Ref::Node(m) = rf {
                    work.push(m);
                }
            },
        );
    }
    stats.live_nodes = live.iter().filter(|&&l| l).count();

    Analysis { info, forms, live, forced_defs, var_roots, stats }
}

fn rfail(info: &[Info], r: Ref) -> bool {
    match r {
        Ref::Const(_) => false,
        Ref::Node(n) => info[n as usize].can_fail,
    }
}

fn rdep(info: &[Info], r: Ref) -> bool {
    match r {
        Ref::Const(_) => false,
        Ref::Node(n) => info[n as usize].choice_dep,
    }
}

#[allow(clippy::too_many_arguments)]
fn intern(
    form: Form,
    id: usize,
    can_fail: bool,
    choice_dep: bool,
    value_numbers: &mut HashMap<Form, u32>,
    forms: &mut [Option<Form>],
    stats: &mut CompileStats,
) -> Info {
    if let Some(&rep) = value_numbers.get(&form) {
        stats.cse_aliased += 1;
        return Info { repr: Ref::Node(rep), can_fail, choice_dep };
    }
    value_numbers.insert(form.clone(), id as u32);
    forms[id] = Some(form);
    Info { repr: Ref::Node(id as u32), can_fail, choice_dep }
}

/// Code emission state for the fallible (lazily evaluated) section.
struct Emitter {
    suffix: Vec<Instr>,
    /// Whether a node's register holds its value at the current program
    /// point (compile-time tracking, scoped to conditional regions).
    available: Vec<bool>,
    /// One frame per open conditional region: the nodes whose
    /// availability must be revoked when the region closes.
    scopes: Vec<Vec<u32>>,
    node_reg: Vec<u32>,
    const_reg: HashMap<u64, u32>,
}

impl Emitter {
    fn reg_of(&self, r: Ref) -> u32 {
        match r {
            Ref::Const(v) => self.const_reg[&v],
            Ref::Node(n) => self.node_reg[n as usize],
        }
    }

    fn push(&mut self, op: Op, dst: u32, a: u32, b: u32, c: u32) -> usize {
        self.suffix.push(Instr { op, dst, a, b, c });
        self.suffix.len() - 1
    }

    fn open_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn close_scope(&mut self) {
        for n in self.scopes.pop().expect("unbalanced scope") {
            self.available[n as usize] = false;
        }
    }

    fn mark_available(&mut self, n: u32) {
        self.available[n as usize] = true;
        if let Some(frame) = self.scopes.last_mut() {
            frame.push(n);
        }
    }

    /// Makes `r`'s value available in its register at the current point,
    /// emitting lazily-guarded code for fallible nodes on demand, and
    /// returns the register.
    fn ensure(&mut self, r: Ref, an: &Analysis) -> u32 {
        if let Ref::Node(n) = r {
            if !self.available[n as usize] {
                self.emit_lazy(n, an);
            }
        }
        self.reg_of(r)
    }

    /// Emits code computing fallible node `n` at the current program
    /// point, guarded exactly as the tree walker's lazy evaluation
    /// demands it.
    fn emit_lazy(&mut self, n: u32, an: &Analysis) {
        let dst = self.node_reg[n as usize];
        let form = an.forms[n as usize].clone().expect("fallible node must have a form");
        match form {
            // Leaves and safe nodes are emitted eagerly up front and are
            // always available; only fallible interior nodes reach here.
            Form::Var(_) | Form::Choice(_) => unreachable!("leaves are always available"),
            Form::Unary(op, a) => {
                let ra = self.ensure(a, an);
                let op = unary_opcode(op);
                self.push(op, dst, ra, 0, 0);
            }
            Form::Binary(op, a, b) => {
                let ra = self.ensure(a, an);
                let rb = self.ensure(b, an);
                let op = binary_opcode(op, b);
                self.push(op, dst, ra, rb, 0);
            }
            Form::Ternary(c, t, o) => {
                let rc = self.ensure(c, an);
                let jz = self.push(Op::JumpIfZero, 0, rc, 0, 0);
                self.open_scope();
                let rt = self.ensure(t, an);
                self.push(Op::Move, dst, rt, 0, 0);
                self.close_scope();
                let jend = self.push(Op::Jump, 0, 0, 0, 0);
                self.suffix[jz].b = self.suffix.len() as u32;
                self.open_scope();
                let ro = self.ensure(o, an);
                self.push(Op::Move, dst, ro, 0, 0);
                self.close_scope();
                self.suffix[jend].a = self.suffix.len() as u32;
            }
            Form::Select(arms, default) => {
                let mut jends = Vec::with_capacity(arms.len());
                let mut fall_scopes = 0;
                for (g, v) in arms {
                    let rg = self.ensure(g, an);
                    let jz = self.push(Op::JumpIfZero, 0, rg, 0, 0);
                    self.open_scope();
                    let rv = self.ensure(v, an);
                    self.push(Op::Move, dst, rv, 0, 0);
                    self.close_scope();
                    jends.push(self.push(Op::Jump, 0, 0, 0, 0));
                    self.suffix[jz].b = self.suffix.len() as u32;
                    // everything after a failed guard only runs on that
                    // fall-through path: open a region for the rest
                    self.open_scope();
                    fall_scopes += 1;
                }
                let rd = self.ensure(default, an);
                self.push(Op::Move, dst, rd, 0, 0);
                for _ in 0..fall_scopes {
                    self.close_scope();
                }
                let end = self.suffix.len() as u32;
                for j in jends {
                    self.suffix[j].a = end;
                }
            }
        }
        self.mark_available(n);
    }
}

fn unary_opcode(op: UnaryOp) -> Op {
    match op {
        UnaryOp::Not => Op::Not,
        UnaryOp::BitNot => Op::BitNot,
    }
}

/// Maps a binary operator to its opcode; `Mod` picks the unchecked form
/// only when the divisor is a nonzero constant.
fn binary_opcode(op: BinaryOp, divisor: Ref) -> Op {
    match op {
        BinaryOp::And => Op::And,
        BinaryOp::Or => Op::Or,
        BinaryOp::BitAnd => Op::BitAnd,
        BinaryOp::BitOr => Op::BitOr,
        BinaryOp::BitXor => Op::BitXor,
        BinaryOp::Add => Op::Add,
        BinaryOp::Sub => Op::Sub,
        BinaryOp::Mul => Op::Mul,
        BinaryOp::Mod => match divisor {
            Ref::Const(v) if v != 0 => Op::ModUnchecked,
            _ => Op::ModChecked,
        },
        BinaryOp::Eq => Op::Eq,
        BinaryOp::Ne => Op::Ne,
        BinaryOp::Lt => Op::Lt,
        BinaryOp::Le => Op::Le,
        BinaryOp::Gt => Op::Gt,
        BinaryOp::Ge => Op::Ge,
        BinaryOp::Shl => Op::Shl,
        BinaryOp::Shr => Op::Shr,
    }
}

fn emit(model: &Model, an: Analysis) -> StepProgram {
    let n_exprs = an.info.len();

    // Register allocation: constants first (preloaded, never written),
    // then one register per live node. No reuse — register files for
    // real models are a few hundred words.
    let mut const_reg: HashMap<u64, u32> = HashMap::new();
    let mut init_consts: Vec<u64> = Vec::new();
    let alloc_const = |v: u64, pool: &mut HashMap<u64, u32>, vals: &mut Vec<u64>| {
        *pool.entry(v).or_insert_with(|| {
            vals.push(v);
            (vals.len() - 1) as u32
        })
    };
    for i in 0..n_exprs {
        if !an.live[i] {
            continue;
        }
        an.forms[i].as_ref().expect("live node must have a form").for_each_ref(|r| {
            if let Ref::Const(v) = r {
                alloc_const(v, &mut const_reg, &mut init_consts);
            }
        });
    }
    for r in &an.var_roots {
        if let Ref::Const(v) = r {
            alloc_const(*v, &mut const_reg, &mut init_consts);
        }
    }
    let n_consts = init_consts.len();
    let mut node_reg = vec![u32::MAX; n_exprs];
    let mut next_reg = n_consts as u32;
    for (i, reg) in node_reg.iter_mut().enumerate() {
        if an.live[i] {
            *reg = next_reg;
            next_reg += 1;
        }
    }

    // Phase A: eager emission of every safe live node in topological
    // (id) order — state-only nodes into the prefix, choice-dependent
    // ones into the suffix. Safe nodes never fail, so evaluating them
    // unconditionally (branch-free CondMove for Ternary/Select) is
    // value- and error-exact.
    let mut prefix: Vec<Instr> = Vec::new();
    let mut em = Emitter {
        suffix: Vec::new(),
        available: vec![false; n_exprs],
        scopes: Vec::new(),
        node_reg,
        const_reg,
    };
    for i in 0..n_exprs {
        if !an.live[i] || an.info[i].can_fail {
            continue;
        }
        let form = an.forms[i].as_ref().expect("live node must have a form");
        let dst = em.node_reg[i];
        let sink = if an.info[i].choice_dep { &mut em.suffix } else { &mut prefix };
        match form {
            Form::Var(v) => sink.push(Instr { op: Op::LoadVar, dst, a: *v, b: 0, c: 0 }),
            Form::Choice(c) => sink.push(Instr { op: Op::LoadChoice, dst, a: *c, b: 0, c: 0 }),
            Form::Unary(op, a) => {
                let ra = match a {
                    Ref::Const(v) => em.const_reg[v],
                    Ref::Node(n) => em.node_reg[*n as usize],
                };
                sink.push(Instr { op: unary_opcode(*op), dst, a: ra, b: 0, c: 0 });
            }
            Form::Binary(op, a, b) => {
                let reg = |r: &Ref| match r {
                    Ref::Const(v) => em.const_reg[v],
                    Ref::Node(n) => em.node_reg[*n as usize],
                };
                sink.push(Instr { op: binary_opcode(*op, *b), dst, a: reg(a), b: reg(b), c: 0 });
            }
            Form::Ternary(c, t, o) => {
                let reg = |r: &Ref| match r {
                    Ref::Const(v) => em.const_reg[v],
                    Ref::Node(n) => em.node_reg[*n as usize],
                };
                sink.push(Instr { op: Op::CondMove, dst, a: reg(c), b: reg(t), c: reg(o) });
            }
            Form::Select(arms, default) => {
                let reg = |r: &Ref| match r {
                    Ref::Const(v) => em.const_reg[v],
                    Ref::Node(n) => em.node_reg[*n as usize],
                };
                // dst starts as the default; arms applied in reverse so
                // the first matching guard wins.
                sink.push(Instr { op: Op::Move, dst, a: reg(default), b: 0, c: 0 });
                for (g, v) in arms.iter().rev() {
                    sink.push(Instr { op: Op::CondMove, dst, a: reg(g), b: reg(v), c: dst });
                }
            }
        }
        em.available[i] = true;
    }

    // Phase B: the fallible tail of the suffix. Fallible definition
    // roots are forced in definition order (the tree walker evaluates
    // them unconditionally before any next-state root), then each
    // variable's root is ensured and stored.
    for &n in &an.forced_defs {
        if !em.available[n as usize] {
            em.emit_lazy(n, &an);
        }
    }
    for (vix, (root, var)) in an.var_roots.iter().zip(model.vars()).enumerate() {
        let src = em.ensure(*root, &an);
        let op = if var.size.is_power_of_two() { Op::StoreMask } else { Op::StoreMod };
        em.push(op, vix as u32, src, 0, 0);
    }
    debug_assert!(em.scopes.is_empty(), "unbalanced lazy-emission scopes");

    // Concatenate: jump targets were suffix-relative, rebase them.
    let prefix_len = prefix.len();
    let mut instrs = prefix;
    for mut i in em.suffix {
        match i.op {
            Op::Jump => i.a += prefix_len as u32,
            Op::JumpIfZero => i.b += prefix_len as u32,
            _ => {}
        }
        instrs.push(i);
    }

    let mut init_regs = vec![0u64; next_reg as usize];
    init_regs[..n_consts].copy_from_slice(&init_consts);

    let var_sizes: Vec<u64> = model.vars().iter().map(|v| v.size).collect();
    let var_masks: Vec<u64> =
        var_sizes.iter().map(|&s| if s.is_power_of_two() { s - 1 } else { 0 }).collect();

    let stats = CompileStats {
        instructions: instrs.len(),
        prefix_instructions: prefix_len,
        registers: init_regs.len(),
        const_registers: n_consts,
        ..an.stats
    };
    StepProgram {
        instrs,
        prefix_len,
        init_regs,
        const_regs: n_consts,
        var_sizes,
        var_masks,
        n_choices: model.choices().len(),
        stats,
        // the dependence side of delta enumeration: one extra forward
        // scan over the same arena this lowering just walked
        dep_sets: archval_fsm::DepSets::compute(model),
    }
}
