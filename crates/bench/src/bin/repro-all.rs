//! Runs every repro experiment in sequence at the given scale and writes a
//! machine-readable summary to `experiments.json`.
//!
//! ```sh
//! cargo run --release -p archval-bench --bin repro-all [micro|standard|full|paper]
//! ```

use std::process::Command;

use archval_bench::BenchError;

fn main() {
    archval_bench::run("repro-all", body);
}

fn body() -> Result<(), BenchError> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "standard".into());
    let bins = [
        "repro-table1-1",
        "repro-table3-1",
        "repro-fig3-2",
        "repro-table3-2",
        "repro-table3-3",
        "repro-table2-1",
        "repro-fig2-2",
        "repro-fig4-1",
        "repro-fig4-2",
        "repro-ablations",
        "repro-fuzz",
    ];
    let exe = std::env::current_exe()
        .map_err(|source| BenchError::Io { path: "current exe".into(), source })?;
    let dir = exe
        .parent()
        .ok_or_else(|| BenchError::Invalid(format!("{} has no parent dir", exe.display())))?;
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n────────────────────────────────────────────────────────────");
        println!("▶ {bin} {scale}\n");
        let status = Command::new(dir.join(bin))
            .arg(&scale)
            .status()
            .map_err(|source| BenchError::Io { path: dir.join(bin), source })?;
        if !status.success() {
            failures.push(bin);
        }
    }
    println!("\n────────────────────────────────────────────────────────────");
    if !failures.is_empty() {
        return Err(BenchError::Invalid(format!("experiments failed: {failures:?}")));
    }
    println!("all {} experiments reproduced at scale `{scale}`", bins.len());
    Ok(())
}
