//! Campaign-level robustness: a panicking mutant must not take the
//! campaign down.
//!
//! Runs a real multi-mutant campaign whose tail contains all three chaos
//! mutants — including the engine that panics on its first evaluated
//! transition — under tight budgets, and checks that every mutant still
//! receives a typed verdict, the report is written, and the degenerate
//! mutants land on exactly the verdicts their failure modes demand.

use std::time::Duration;

use archval_fsm::builder::ModelBuilder;
use archval_fsm::Model;
use archval_inject::{run_campaign, CampaignConfig, RunBudget, Strategy, SuiteConfig, Verdict};

/// Four 16-valued variables all tracking one 4-valued choice: 5 reachable
/// states, but a 65 536-state cross product for the explode engine to get
/// lost in.
fn wide_model() -> Model {
    let mut b = ModelBuilder::new("wide");
    let c = b.choice("c", 4);
    for i in 0..4 {
        let v = b.state_var(format!("v{i}"), 16, 0);
        b.set_next(v, b.choice_expr(c));
    }
    b.build().unwrap()
}

fn chaos_config(checkpoint: Option<std::path::PathBuf>) -> CampaignConfig {
    CampaignConfig {
        mutant_limit: 15,
        include_chaos: true,
        budget: RunBudget {
            max_states: 256,
            max_transitions: 1 << 20,
            deadline: Duration::from_millis(500),
            max_cycles: 4_096,
        },
        suite: SuiteConfig {
            fuzz_cycles: 512,
            random_seqs: 4,
            random_len: 64,
            ..Default::default()
        },
        // 200 ms per dequeued state vs a 500 ms deadline: the wedge engine
        // cannot finish even three states in budget.
        wedge_sleep: Duration::from_millis(200),
        checkpoint,
        ..Default::default()
    }
}

#[test]
fn panicking_mutant_is_isolated_and_the_campaign_completes() {
    let model = wide_model();
    let checkpoint =
        std::env::temp_dir().join(format!("archval_inject_chaos_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint);

    let report = run_campaign(&model, &chaos_config(Some(checkpoint.clone()))).unwrap();

    // The report was written: one checkpoint line per completed mutant.
    let lines = std::fs::read_to_string(&checkpoint).unwrap();
    assert_eq!(lines.lines().count(), report.mutants.len());
    std::fs::remove_file(&checkpoint).unwrap();

    // Zero campaign aborts: every generated mutant carries a verdict for
    // every strategy.
    assert!(report.complete);
    assert_eq!(report.mutants.len(), 15);
    for outcome in &report.mutants {
        assert_eq!(outcome.verdicts.len(), 3, "{}", outcome.label);
    }

    let by_label = |label: &str| {
        report
            .mutants
            .iter()
            .find(|o| o.label == label)
            .unwrap_or_else(|| panic!("campaign lost mutant {label}"))
    };

    // The panicking engine degrades to Panicked on every strategy…
    let panicked = by_label("chaos:panic");
    assert!(panicked.verdicts.iter().all(|v| v.verdict == Verdict::Panicked), "{panicked:?}");

    // …the exploding engine to StateExplosion…
    let exploded = by_label("chaos:explode");
    assert!(exploded.verdicts.iter().all(|v| v.verdict == Verdict::StateExplosion), "{exploded:?}");

    // …and the wedged engine to Timeout.
    let wedged = by_label("chaos:wedge");
    assert!(wedged.verdicts.iter().all(|v| v.verdict == Verdict::Timeout), "{wedged:?}");

    // The campaign still did its real job around the chaos: genuine
    // mutants ran to genuine verdicts, and tours killed some of them.
    let tours = report.kill_rate(Strategy::Tours).unwrap();
    assert!(tours.killed > 0, "tours killed nothing: {tours:?}");
    assert!(
        report
            .mutants
            .iter()
            .filter(|o| o.family != "chaos")
            .all(|o| o.verdicts.iter().all(|v| v.verdict.scores())),
        "a genuine mutant degenerated under chaos budgets"
    );
}

#[test]
fn chaos_campaign_is_reproducible_despite_wall_clock_verdicts() {
    let model = wide_model();
    let a = run_campaign(&model, &chaos_config(None)).unwrap();
    let b = run_campaign(&model, &chaos_config(None)).unwrap();
    // Timeout and StateExplosion verdicts carry no wall-clock payloads, so
    // even the chaos rows serialize identically across runs.
    assert_eq!(a.to_json(), b.to_json());
}

/// Batched re-enumeration must not disturb the chaos machinery: the
/// chaos engines only implement the scalar `step_choices` (the default
/// `step_batch` loops it per lane), so under `batch_lanes > 1` the
/// panicking engine still panics into isolation, the exploder still
/// trips the state budget, the wedge still times out — and every genuine
/// mutant lands on the same verdict as the scalar campaign.
#[test]
fn chaos_verdicts_survive_batched_re_enumeration() {
    let model = wide_model();
    let scalar = run_campaign(&model, &chaos_config(None)).unwrap();
    let batched_config = CampaignConfig { batch_lanes: 64, ..chaos_config(None) };
    let batched = run_campaign(&model, &batched_config).unwrap();

    assert!(batched.complete);
    assert_eq!(batched.mutants.len(), scalar.mutants.len());
    for (b, s) in batched.mutants.iter().zip(&scalar.mutants) {
        assert_eq!(b.label, s.label);
        assert_eq!(b.verdicts, s.verdicts, "verdicts diverged for {}", b.label);
    }
    // the full reports serialize byte-identically: batching changes no
    // verdict, no enumeration outcome, no kill-rate cell
    assert_eq!(batched.to_json(), scalar.to_json());
}
