//! A synchronous interpreter for the Verilog subset.
//!
//! Used as the reference semantics for the translator: the translated FSM
//! model and this interpreter must agree cycle-by-cycle on every register
//! under arbitrary input stimulus (a property test in the test suite).
//!
//! The evaluation model is two-phase, matching both the subset's
//! synthesizable intent and the Synchronous Murphi concurrency model the
//! paper maps it onto: combinational logic settles (definitions evaluated
//! in dependency order), then the clock edge commits all nonblocking
//! register updates at once.

use std::collections::{HashMap, HashSet};

use crate::ast::{Design, Expr, Module, PortDir, Sensitivity, Stmt, VBinary, VUnary};
use crate::error::VerilogError;

/// A running interpretation of one module.
#[derive(Debug)]
pub struct Interp {
    module: Module,
    widths: HashMap<String, u32>,
    /// Current value of every signal.
    values: HashMap<String, u64>,
    /// Topological order of combinationally driven signals; entries are
    /// indices into `module.assigns` (Left) or `module.always` (Right),
    /// deduplicated, each appearing once.
    comb_plan: Vec<CombStep>,
    inputs: HashSet<String>,
    cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CombStep {
    Assign(usize),
    Always(usize),
}

impl Interp {
    /// Creates an interpreter for module `top` with all signals at 0.
    ///
    /// # Errors
    ///
    /// Returns [`VerilogError`] if the module does not exist, a signal has
    /// multiple drivers, or the combinational logic is cyclic.
    pub fn new(design: &Design, top: &str) -> Result<Self, VerilogError> {
        let module = design
            .module(top)
            .ok_or_else(|| VerilogError::NoSuchModule { name: top.to_owned() })?
            .clone();
        let mut widths = HashMap::new();
        for d in &module.decls {
            widths.insert(d.name.clone(), d.width);
        }
        let mut inputs = HashSet::new();
        for d in &module.decls {
            if d.dir == Some(PortDir::Input) {
                inputs.insert(d.name.clone());
            }
        }

        // map each comb-driven signal to its driving step
        let mut driver: HashMap<String, CombStep> = HashMap::new();
        for (i, a) in module.assigns.iter().enumerate() {
            if driver.insert(a.lhs.clone(), CombStep::Assign(i)).is_some() {
                return Err(VerilogError::Unsupported {
                    msg: format!("module `{top}`: signal `{}` has multiple drivers", a.lhs),
                });
            }
        }
        for (i, a) in module.always.iter().enumerate() {
            if a.sensitivity == Sensitivity::Comb {
                let mut targets = Vec::new();
                collect_targets(&a.body, &mut targets);
                let mut seen = HashSet::new();
                for t in targets {
                    if !seen.insert(t.clone()) {
                        continue;
                    }
                    if driver.insert(t.clone(), CombStep::Always(i)).is_some() {
                        return Err(VerilogError::Unsupported {
                            msg: format!("module `{top}`: signal `{t}` has multiple drivers"),
                        });
                    }
                }
            }
        }

        // topological sort over steps
        let step_reads = |s: CombStep| -> Vec<String> {
            let mut out = Vec::new();
            match s {
                CombStep::Assign(i) => module.assigns[i].rhs.referenced(&mut out),
                CombStep::Always(i) => collect_reads(&module.always[i].body, &mut out),
            }
            out
        };
        let mut order: Vec<CombStep> = Vec::new();
        let mut state: HashMap<String, u8> = HashMap::new(); // 1 = visiting, 2 = done
        let mut names: Vec<&String> = driver.keys().collect();
        names.sort();
        // iterative DFS to avoid recursion limits on deep designs
        for root in names {
            if state.get(root).copied() == Some(2) {
                continue;
            }
            let mut stack: Vec<(String, usize, Vec<String>)> = Vec::new();
            let deps0 = step_reads(driver[root]);
            state.insert(root.clone(), 1);
            stack.push((root.clone(), 0, deps0));
            while let Some((name, mut i, deps)) = stack.pop() {
                let mut descended = false;
                while i < deps.len() {
                    let d = &deps[i];
                    i += 1;
                    if driver.contains_key(d) {
                        match state.get(d).copied() {
                            Some(2) => {}
                            Some(1) => {
                                return Err(VerilogError::Fsm(
                                    archval_fsm::Error::CombinationalCycle { def: d.clone() },
                                ))
                            }
                            _ => {
                                state.insert(d.clone(), 1);
                                let dd = step_reads(driver[d]);
                                let dname = d.clone();
                                stack.push((name.clone(), i, deps));
                                stack.push((dname, 0, dd));
                                descended = true;
                                break;
                            }
                        }
                    }
                }
                if descended {
                    continue;
                }
                state.insert(name.clone(), 2);
                let step = driver[&name];
                if !order.contains(&step) {
                    order.push(step);
                }
            }
        }

        let mut values = HashMap::new();
        for d in &module.decls {
            values.insert(d.name.clone(), 0);
        }

        Ok(Interp { module, widths, values, comb_plan: order, inputs, cycles: 0 })
    }

    /// Sets an input port. The value is masked to the port's width.
    ///
    /// # Errors
    ///
    /// Returns [`VerilogError::Undeclared`] if `name` is not an input.
    pub fn set_input(&mut self, name: &str, value: u64) -> Result<(), VerilogError> {
        if !self.inputs.contains(name) {
            return Err(VerilogError::Undeclared {
                module: self.module.name.clone(),
                name: format!("{name} (not an input)"),
            });
        }
        let w = self.widths[name];
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        self.values.insert(name.to_owned(), value & mask);
        Ok(())
    }

    /// Reads the current value of any signal.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Clock cycles executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Settles combinational logic against the current inputs and register
    /// values, without advancing the clock.
    ///
    /// # Errors
    ///
    /// Propagates expression evaluation failures.
    pub fn settle(&mut self) -> Result<(), VerilogError> {
        for step in self.comb_plan.clone() {
            match step {
                CombStep::Assign(i) => {
                    let a = self.module.assigns[i].clone();
                    let (v, _) = self.eval(&a.rhs)?;
                    let w = self.widths[&a.lhs];
                    self.values.insert(a.lhs.clone(), v & mask(w));
                }
                CombStep::Always(i) => {
                    let a = self.module.always[i].clone();
                    let mut nb = HashMap::new();
                    self.exec(&a.body, &mut nb)?;
                    debug_assert!(nb.is_empty(), "nonblocking in comb block");
                }
            }
        }
        Ok(())
    }

    /// Advances one clock cycle: settles combinational logic, executes all
    /// `posedge` blocks, commits nonblocking updates, then settles again so
    /// outputs reflect the new registers.
    ///
    /// # Errors
    ///
    /// Propagates expression evaluation failures.
    pub fn posedge(&mut self) -> Result<(), VerilogError> {
        self.settle()?;
        let mut nb: HashMap<String, u64> = HashMap::new();
        for i in 0..self.module.always.len() {
            if matches!(self.module.always[i].sensitivity, Sensitivity::Posedge { .. }) {
                let body = self.module.always[i].body.clone();
                self.exec(&body, &mut nb)?;
            }
        }
        for (k, v) in nb {
            let w = self.widths[&k];
            self.values.insert(k, v & mask(w));
        }
        self.cycles += 1;
        self.settle()
    }

    fn exec(&mut self, stmt: &Stmt, nb: &mut HashMap<String, u64>) -> Result<(), VerilogError> {
        match stmt {
            Stmt::Empty => Ok(()),
            Stmt::Block(ss) => {
                for s in ss {
                    self.exec(s, nb)?;
                }
                Ok(())
            }
            Stmt::Blocking { lhs, rhs } => {
                let (v, _) = self.eval(rhs)?;
                let w = *self.widths.get(lhs).ok_or_else(|| VerilogError::Undeclared {
                    module: self.module.name.clone(),
                    name: lhs.clone(),
                })?;
                self.values.insert(lhs.clone(), v & mask(w));
                Ok(())
            }
            Stmt::NonBlocking { lhs, rhs } => {
                let (v, _) = self.eval(rhs)?;
                nb.insert(lhs.clone(), v);
                Ok(())
            }
            Stmt::If { cond, then, other } => {
                let (c, _) = self.eval(cond)?;
                if c != 0 {
                    self.exec(then, nb)
                } else if let Some(o) = other {
                    self.exec(o, nb)
                } else {
                    Ok(())
                }
            }
            Stmt::Case { scrutinee, arms, default } => {
                let (s, _) = self.eval(scrutinee)?;
                for (labels, body) in arms {
                    for l in labels {
                        let (lv, _) = self.eval(l)?;
                        if lv == s {
                            return self.exec(body, nb);
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec(d, nb)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Evaluates an expression; returns `(value, width)` with the same
    /// width rules the translator uses.
    fn eval(&self, e: &Expr) -> Result<(u64, u32), VerilogError> {
        Ok(match e {
            Expr::Literal { value, width } => {
                let w = width.unwrap_or(32).min(32);
                (value & mask(w), w)
            }
            Expr::Ident(name) => {
                let v = self.values.get(name).copied().ok_or_else(|| VerilogError::Undeclared {
                    module: self.module.name.clone(),
                    name: name.clone(),
                })?;
                (v, self.widths[name])
            }
            Expr::BitSelect { base, index } => {
                let v = self.values.get(base).copied().ok_or_else(|| VerilogError::Undeclared {
                    module: self.module.name.clone(),
                    name: base.clone(),
                })?;
                ((v >> index) & 1, 1)
            }
            Expr::PartSelect { base, high, low } => {
                let v = self.values.get(base).copied().ok_or_else(|| VerilogError::Undeclared {
                    module: self.module.name.clone(),
                    name: base.clone(),
                })?;
                let w = high - low + 1;
                ((v >> low) & mask(w), w)
            }
            Expr::Concat(parts) => {
                let mut acc = 0u64;
                let mut aw = 0u32;
                for p in parts {
                    let (pv, pw) = self.eval(p)?;
                    acc = (acc << pw) | pv;
                    aw += pw;
                }
                (acc & mask(aw.min(32)), aw)
            }
            Expr::Unary(op, a) => {
                let (av, aw) = self.eval(a)?;
                match op {
                    VUnary::LogicalNot => (u64::from(av == 0), 1),
                    VUnary::BitNot => (!av & mask(aw), aw),
                    VUnary::RedAnd => (u64::from(av == mask(aw)), 1),
                    VUnary::RedOr => (u64::from(av != 0), 1),
                    VUnary::RedXor => (u64::from(av.count_ones() % 2 == 1), 1),
                    VUnary::Neg => (av.wrapping_neg() & mask(aw), aw),
                }
            }
            Expr::Binary(op, x, y) => {
                let (xv, xw) = self.eval(x)?;
                let (yv, yw) = self.eval(y)?;
                let w = xw.max(yw);
                match op {
                    VBinary::LogicalAnd => (u64::from(xv != 0 && yv != 0), 1),
                    VBinary::LogicalOr => (u64::from(xv != 0 || yv != 0), 1),
                    VBinary::BitAnd => (xv & yv, w),
                    VBinary::BitOr => (xv | yv, w),
                    VBinary::BitXor => (xv ^ yv, w),
                    VBinary::Add => (xv.wrapping_add(yv) & mask(w), w),
                    VBinary::Sub => (xv.wrapping_sub(yv) & mask(w), w),
                    VBinary::Mul => (xv.wrapping_mul(yv) & mask(w), w),
                    VBinary::Eq => (u64::from(xv == yv), 1),
                    VBinary::Ne => (u64::from(xv != yv), 1),
                    VBinary::Lt => (u64::from(xv < yv), 1),
                    VBinary::Le => (u64::from(xv <= yv), 1),
                    VBinary::Gt => (u64::from(xv > yv), 1),
                    VBinary::Ge => (u64::from(xv >= yv), 1),
                    VBinary::Shl => ((xv << yv.min(63)) & mask(xw), xw),
                    VBinary::Shr => (xv >> yv.min(63), xw),
                }
            }
            Expr::Ternary { cond, then, other } => {
                let (c, _) = self.eval(cond)?;
                let (tv, tw) = self.eval(then)?;
                let (ov, ow) = self.eval(other)?;
                (if c != 0 { tv } else { ov }, tw.max(ow))
            }
        })
    }
}

fn mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

fn collect_targets(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Empty => {}
        Stmt::Block(ss) => ss.iter().for_each(|s| collect_targets(s, out)),
        Stmt::If { then, other, .. } => {
            collect_targets(then, out);
            if let Some(o) = other {
                collect_targets(o, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for (_, s) in arms {
                collect_targets(s, out);
            }
            if let Some(d) = default {
                collect_targets(d, out);
            }
        }
        Stmt::NonBlocking { lhs, .. } | Stmt::Blocking { lhs, .. } => out.push(lhs.clone()),
    }
}

fn collect_reads(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Empty => {}
        Stmt::Block(ss) => ss.iter().for_each(|s| collect_reads(s, out)),
        Stmt::If { cond, then, other } => {
            cond.referenced(out);
            collect_reads(then, out);
            if let Some(o) = other {
                collect_reads(o, out);
            }
        }
        Stmt::Case { scrutinee, arms, default } => {
            scrutinee.referenced(out);
            for (labels, s) in arms {
                for l in labels {
                    l.referenced(out);
                }
                collect_reads(s, out);
            }
            if let Some(d) = default {
                collect_reads(d, out);
            }
        }
        Stmt::NonBlocking { rhs, .. } | Stmt::Blocking { rhs, .. } => rhs.referenced(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn interp(src: &str, top: &str) -> Interp {
        Interp::new(&parse(src).unwrap(), top).unwrap()
    }

    #[test]
    fn counter_with_reset() {
        let mut i = interp(
            "module c(clk, reset, q);\n input clk, reset;\n output [3:0] q;\n reg [3:0] q;\n \
             always @(posedge clk) begin\n if (reset) q <= 4'd0;\n else q <= q + 4'd1;\n \
             end\nendmodule",
            "c",
        );
        i.set_input("reset", 1).unwrap();
        i.posedge().unwrap();
        assert_eq!(i.get("q"), Some(0));
        i.set_input("reset", 0).unwrap();
        for want in 1..=17u64 {
            i.posedge().unwrap();
            assert_eq!(i.get("q"), Some(want % 16));
        }
        assert_eq!(i.cycles(), 18);
    }

    #[test]
    fn assigns_settle_in_dependency_order() {
        let mut i = interp(
            "module m(a, y);\n input a;\n output y;\n wire u, v;\n \
             assign y = v;\n assign v = u;\n assign u = ~a;\nendmodule",
            "m",
        );
        i.set_input("a", 0).unwrap();
        i.settle().unwrap();
        assert_eq!(i.get("y"), Some(1));
        i.set_input("a", 1).unwrap();
        i.settle().unwrap();
        assert_eq!(i.get("y"), Some(0));
    }

    #[test]
    fn nonblocking_swap() {
        let mut i = interp(
            "module s(clk, reset, a, b);\n input clk, reset;\n output a, b;\n reg a, b;\n \
             always @(posedge clk) begin\n if (reset) begin a <= 1'b0; b <= 1'b1; end\n \
             else begin a <= b; b <= a; end\n end\nendmodule",
            "s",
        );
        i.set_input("reset", 1).unwrap();
        i.posedge().unwrap();
        i.set_input("reset", 0).unwrap();
        i.posedge().unwrap();
        assert_eq!((i.get("a"), i.get("b")), (Some(1), Some(0)));
        i.posedge().unwrap();
        assert_eq!((i.get("a"), i.get("b")), (Some(0), Some(1)));
    }

    #[test]
    fn comb_always_with_latch_holds_value() {
        let mut i = interp(
            "module l(en, d, q);\n input en, d;\n output q;\n reg q;\n \
             always @(*) begin\n if (en) q = d;\n end\nendmodule",
            "l",
        );
        i.set_input("en", 1).unwrap();
        i.set_input("d", 1).unwrap();
        i.settle().unwrap();
        assert_eq!(i.get("q"), Some(1));
        i.set_input("en", 0).unwrap();
        i.set_input("d", 0).unwrap();
        i.settle().unwrap();
        assert_eq!(i.get("q"), Some(1), "latch holds");
    }

    #[test]
    fn case_priority_matches_first_label() {
        let mut i = interp(
            "module m(s, y);\n input [1:0] s;\n output [3:0] y;\n reg [3:0] y;\n \
             always @(*) begin\n case (s)\n 2'd0: y = 4'd10;\n 2'd1: y = 4'd11;\n \
             default: y = 4'd15;\n endcase\n end\nendmodule",
            "m",
        );
        for (s, want) in [(0u64, 10u64), (1, 11), (2, 15), (3, 15)] {
            i.set_input("s", s).unwrap();
            i.settle().unwrap();
            assert_eq!(i.get("y"), Some(want));
        }
    }

    #[test]
    fn combinational_cycle_rejected() {
        let d = parse(
            "module m(y);\n output y;\n wire a, b;\n assign a = b;\n assign b = a;\n \
             assign y = a;\nendmodule",
        )
        .unwrap();
        assert!(Interp::new(&d, "m").is_err());
    }

    #[test]
    fn set_unknown_input_rejected() {
        let mut i = interp("module m(a); input a; endmodule", "m");
        assert!(i.set_input("nope", 1).is_err());
        assert!(i.set_input("a", 1).is_ok());
    }

    #[test]
    fn input_masked_to_width() {
        let mut i = interp("module m(a); input [2:0] a; endmodule", "m");
        i.set_input("a", 0xFF).unwrap();
        assert_eq!(i.get("a"), Some(7));
    }
}
