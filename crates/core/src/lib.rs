//! # archval — architecture validation for processors
//!
//! A from-scratch reproduction of *"Architecture Validation for
//! Processors"* (Ho, Yang, Horowitz & Dill, ISCA 1995): automatic
//! generation of simulation test vectors that drive a processor design
//! through **every transition of its control logic**, by
//!
//! 1. translating annotated Verilog into a synchronous FSM model
//!    ([`archval_verilog`]),
//! 2. enumerating every control state reachable from reset, permuting all
//!    abstract interface choices ([`archval_fsm`]),
//! 3. covering the resulting state graph with transition tours
//!    ([`archval_tour`]),
//! 4. mapping tour conditions to concrete instructions and interface
//!    forces ([`archval_stimgen`]), and
//! 5. comparing the RTL implementation against an instruction-level
//!    executable specification ([`archval_sim`]).
//!
//! The device under validation is a reconstruction of the Stanford FLASH
//! Protocol Processor ([`archval_pp`]): a dual-issue DLX-style core with a
//! 2-way set-associative data cache (fill-before-spill, spill buffer,
//! critical-word-first restart, split stores with conflict stalls), an
//! instruction cache, Inbox/Outbox interfaces — and the six injectable
//! "multiple event" bugs of the paper's Table 2.1.
//!
//! # Quickstart
//!
//! Run the generic flow on any annotated Verilog module:
//!
//! ```
//! use archval::flow::ValidationFlow;
//!
//! let src = r#"
//! module gadget(clk, reset, go, busy);
//!   input clk, reset;
//!   input go;           // archval: abstract
//!   output busy;
//!   reg [1:0] state;
//!   wire busy;
//!   assign busy = state != 2'd0;
//!   always @(posedge clk) begin
//!     if (reset) state <= 2'd0;
//!     else case (state)
//!       2'd0: if (go) state <= 2'd1;
//!       2'd1: state <= 2'd2;
//!       default: state <= 2'd0;
//!     endcase
//!   end
//! endmodule
//! "#;
//! let result = ValidationFlow::from_verilog(src, "gadget")?.run()?;
//! assert_eq!(result.enumd.graph.state_count(), 3);
//! assert!(result.tours.covers_all_arcs(&result.enumd.graph));
//! # Ok::<(), archval::Error>(())
//! ```
//!
//! For the full PP validation (vectors, replay, architectural comparison,
//! bug campaigns) see [`archval_sim::campaign`] and the `validate_pp`
//! example.

pub mod flow;
pub mod report;

pub use flow::{
    fuzz_campaign, fuzz_campaign_with_feedback, inject_campaign, inject_campaign_with_pool,
    tour_campaign, Engine, FlowResult, ValidationFlow, DEFAULT_LANES,
};
pub use report::ValidationSummary;

pub use archval_exec as exec;
pub use archval_fsm as fsm;
pub use archval_fuzz as fuzz;
pub use archval_inject as inject;
pub use archval_pp as pp;
pub use archval_sim as sim;
pub use archval_stimgen as stimgen;
pub use archval_tour as tour;
pub use archval_verilog as verilog;

/// Top-level error: anything the pipeline can fail with.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Verilog parsing, annotation or translation failed.
    Verilog(archval_verilog::VerilogError),
    /// Model construction or state enumeration failed.
    Fsm(archval_fsm::Error),
    /// A coverage-guided fuzzing run failed.
    Fuzz(archval_fuzz::Error),
    /// Saving or loading an enumeration snapshot failed.
    Snapshot(archval_fsm::SnapshotError),
    /// A fault-injection campaign failed at the campaign level (reference
    /// design, checkpoint I/O or checkpoint mismatch — individual mutants
    /// never fail a campaign, they degrade to typed verdicts).
    Inject(archval_inject::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Verilog(e) => write!(f, "verilog stage failed: {e}"),
            Error::Fsm(e) => write!(f, "fsm stage failed: {e}"),
            Error::Fuzz(e) => write!(f, "fuzzing stage failed: {e}"),
            Error::Snapshot(e) => write!(f, "snapshot stage failed: {e}"),
            Error::Inject(e) => write!(f, "fault-injection stage failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Verilog(e) => Some(e),
            Error::Fsm(e) => Some(e),
            Error::Fuzz(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::Inject(e) => Some(e),
        }
    }
}

impl From<archval_verilog::VerilogError> for Error {
    fn from(e: archval_verilog::VerilogError) -> Self {
        Error::Verilog(e)
    }
}

impl From<archval_fsm::Error> for Error {
    fn from(e: archval_fsm::Error) -> Self {
        Error::Fsm(e)
    }
}

impl From<archval_fuzz::Error> for Error {
    fn from(e: archval_fuzz::Error) -> Self {
        Error::Fuzz(e)
    }
}

impl From<archval_inject::Error> for Error {
    fn from(e: archval_inject::Error) -> Self {
        Error::Inject(e)
    }
}

impl From<archval_fsm::SnapshotError> for Error {
    fn from(e: archval_fsm::SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wraps_and_displays() {
        let e = Error::from(archval_fsm::Error::EmptyModel);
        assert!(e.to_string().contains("fsm stage"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
