//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a deterministic property-testing core with the subset of the
//! proptest 1.x API it uses: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`], [`any`] and `proptest::bool::ANY`,
//! plus the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failure reports the case
//! number; seeds are a pure function of test name and case index, so every
//! failure reproduces by rerunning the test) and no failure persistence.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Runner configuration (mirrors the fields this workspace touches).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case generator handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Builds the RNG for one `(test name, case index)` pair. Deterministic,
/// so failures reproduce by rerunning the same test binary.
pub fn test_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))))
}

/// A failed (or rejected) test case, produced by the `prop_assert*` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The input was rejected (unused by this workspace; kept for parity).
    Reject(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (no shrinking to invert).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Samples one value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod bool {
    //! `proptest::bool::ANY`.

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy value.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares property tests. Mirrors proptest's macro for the forms this
/// workspace uses: an optional `#![proptest_config(...)]` header followed
/// by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: both sides equal `{:?}`", __l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_stay_in_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        let s = crate::collection::vec(3u64..9, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (3..9).contains(x)));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = crate::test_rng("map", 0);
        let s = (0u32..4, 0u32..4).prop_map(|(a, b)| a + b);
        for _ in 0..50 {
            assert!(s.generate(&mut rng) < 8);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<u64> = (0..8).map(|_| crate::test_rng("x", 3).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(crate::test_rng("x", 3).next_u64(), crate::test_rng("x", 4).next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(v in crate::collection::vec(0u8..10, 1..6), flag in crate::bool::ANY) {
            prop_assert!(v.len() < 6);
            prop_assert!(!v.is_empty(), "vec empty with flag {flag}");
            prop_assert_eq!(v.len(), v.iter().map(|_| 1usize).sum::<usize>());
        }
    }
}
