//! Bytecode-level fault injection: opcode and operand flips over a
//! compiled [`StepProgram`].
//!
//! Model-level mutants (see `archval_fsm::mutate`) perturb the design
//! *before* lowering; the operators here perturb the design *after*
//! lowering, modelling faults the compiler pipeline itself could
//! introduce — a wrong ALU opcode, swapped operands on a non-commutative
//! operation, an inverted multiplexer select. A campaign running both
//! families checks that tours kill faults regardless of which layer they
//! originate in.
//!
//! Only value-computing instructions are mutated. Control flow (`Jump`,
//! `JumpIfZero`), input loads, domain-truncating stores and the `Mod`
//! flavours are left untouched: flipping those produces programs that are
//! malformed rather than *wrong*, and the campaign wants semantic faults,
//! not crashes. Every mutant produced here passes
//! [`StepProgram::validate`], which independently checks operand ranges so
//! a corrupted program is rejected with a typed error instead of panicking
//! the interpreter.

use archval_fsm::Error;

use crate::program::{Op, StepProgram};

/// One applicable bytecode fault, identified by instruction index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProgramMutation {
    /// The instruction's opcode is replaced by its paired wrong opcode
    /// (`Add`↔`Sub`, `Eq`↔`Ne`, `Lt`↔`Ge`, `And`↔`Or`, ...).
    OpFlip {
        /// Index into [`StepProgram::instrs`].
        instr: usize,
    },
    /// The instruction's register operands are swapped: `a`/`b` for
    /// non-commutative binary ops, the taken/not-taken pair `b`/`c` for
    /// `CondMove` (an inverted multiplexer select).
    SwapOperands {
        /// Index into [`StepProgram::instrs`].
        instr: usize,
    },
}

impl ProgramMutation {
    /// A short, stable, human-readable label for reports and checkpoints.
    pub fn label(&self) -> String {
        match self {
            ProgramMutation::OpFlip { instr } => format!("op_flip(i{instr})"),
            ProgramMutation::SwapOperands { instr } => format!("swap_operands(i{instr})"),
        }
    }
}

/// The wrong-but-well-formed opcode a fault would substitute, if any.
fn flip_of(op: Op) -> Option<Op> {
    Some(match op {
        Op::And => Op::Or,
        Op::Or => Op::And,
        Op::BitAnd => Op::BitOr,
        Op::BitOr => Op::BitAnd,
        Op::BitXor => Op::BitOr,
        Op::Add => Op::Sub,
        Op::Sub => Op::Add,
        Op::Mul => Op::Add,
        Op::Eq => Op::Ne,
        Op::Ne => Op::Eq,
        Op::Lt => Op::Ge,
        Op::Ge => Op::Lt,
        Op::Le => Op::Gt,
        Op::Gt => Op::Le,
        Op::Shl => Op::Shr,
        Op::Shr => Op::Shl,
        Op::Not => Op::BitNot,
        Op::BitNot => Op::Not,
        _ => return None,
    })
}

/// `true` when swapping `a` and `b` changes the result and stays safe.
fn swappable(op: Op) -> bool {
    matches!(op, Op::Sub | Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::Shl | Op::Shr)
}

/// Scans a program and returns every applicable bytecode mutation, in
/// instruction order — deterministic for a given program.
pub fn program_mutation_sites(program: &StepProgram) -> Vec<ProgramMutation> {
    let mut out = Vec::new();
    for (i, instr) in program.instrs().iter().enumerate() {
        if flip_of(instr.op).is_some() {
            out.push(ProgramMutation::OpFlip { instr: i });
        }
        if swappable(instr.op) || instr.op == Op::CondMove {
            out.push(ProgramMutation::SwapOperands { instr: i });
        }
    }
    out
}

/// Applies one bytecode mutation, returning the mutant program.
///
/// The mutant steps the same variable/choice shape as the original
/// ([`StepProgram::fits`] is unchanged) and always passes
/// [`StepProgram::validate`].
///
/// # Errors
///
/// Returns a typed error when `mutation` does not apply to this program
/// (out-of-range index or an instruction with no such fault).
pub fn apply_program_mutation(
    program: &StepProgram,
    mutation: &ProgramMutation,
) -> Result<StepProgram, Error> {
    let bad = |what: String| Error::DanglingReference { what };
    let mut mutant = program.clone();
    match mutation {
        ProgramMutation::OpFlip { instr } => {
            let i = mutant
                .instrs
                .get_mut(*instr)
                .ok_or_else(|| bad(format!("mutation targets missing instruction {instr}")))?;
            i.op = flip_of(i.op)
                .ok_or_else(|| bad(format!("instruction {instr} ({:?}) has no flip", i.op)))?;
        }
        ProgramMutation::SwapOperands { instr } => {
            let i = mutant
                .instrs
                .get_mut(*instr)
                .ok_or_else(|| bad(format!("mutation targets missing instruction {instr}")))?;
            if i.op == Op::CondMove {
                std::mem::swap(&mut i.b, &mut i.c);
            } else if swappable(i.op) {
                std::mem::swap(&mut i.a, &mut i.b);
            } else {
                return Err(bad(format!("instruction {instr} ({:?}) is not swappable", i.op)));
            }
        }
    }
    mutant.validate()?;
    Ok(mutant)
}

impl StepProgram {
    /// Structurally validates the program: every register operand is in
    /// range, writes never clobber preloaded constant registers, jump
    /// targets stay inside the instruction stream and on the correct side
    /// of the prefix/suffix split, loads and stores index real inputs and
    /// outputs.
    ///
    /// A freshly compiled or correctly mutated program always passes; a
    /// corrupted program fails with a typed error *before* the interpreter
    /// would panic on an out-of-range index — the campaign's fault-safe
    /// execution guard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DanglingReference`] naming the first offending
    /// instruction.
    pub fn validate(&self) -> Result<(), Error> {
        let regs = self.init_regs.len() as u32;
        let vars = self.var_sizes.len() as u32;
        let choices = self.n_choices as u32;
        let n = self.instrs.len();
        let bad = |i: usize, what: &str| {
            Err(Error::DanglingReference { what: format!("instruction {i}: {what}") })
        };
        if self.prefix_len > n {
            return Err(Error::DanglingReference {
                what: format!("prefix length {} exceeds program length {n}", self.prefix_len),
            });
        }
        for (i, instr) in self.instrs.iter().enumerate() {
            let dst_reg = |x: u32| x >= self.const_regs as u32 && x < regs;
            let src_reg = |x: u32| x < regs;
            let in_prefix = i < self.prefix_len;
            let ok = match instr.op {
                Op::LoadVar => dst_reg(instr.dst) && instr.a < vars,
                Op::LoadChoice => dst_reg(instr.dst) && instr.a < choices && !in_prefix,
                Op::Move | Op::Not | Op::BitNot => dst_reg(instr.dst) && src_reg(instr.a),
                Op::And
                | Op::Or
                | Op::BitAnd
                | Op::BitOr
                | Op::BitXor
                | Op::Add
                | Op::Sub
                | Op::Mul
                | Op::ModUnchecked
                | Op::ModChecked
                | Op::Eq
                | Op::Ne
                | Op::Lt
                | Op::Le
                | Op::Gt
                | Op::Ge
                | Op::Shl
                | Op::Shr => dst_reg(instr.dst) && src_reg(instr.a) && src_reg(instr.b),
                Op::CondMove => {
                    dst_reg(instr.dst) && src_reg(instr.a) && src_reg(instr.b) && src_reg(instr.c)
                }
                Op::Jump => {
                    let t = instr.a as usize;
                    if in_prefix {
                        t <= self.prefix_len
                    } else {
                        t >= self.prefix_len && t <= n
                    }
                }
                Op::JumpIfZero => {
                    let t = instr.b as usize;
                    src_reg(instr.a)
                        && if in_prefix {
                            t <= self.prefix_len
                        } else {
                            t >= self.prefix_len && t <= n
                        }
                }
                Op::StoreMask | Op::StoreMod => instr.dst < vars && src_reg(instr.a) && !in_prefix,
            };
            if !ok {
                return bad(i, "operand out of range");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Instr;
    use archval_fsm::builder::ModelBuilder;
    use archval_fsm::engine::StepEngine;
    use archval_fsm::expr::BinaryOp;
    use archval_fsm::Model;

    fn counter() -> Model {
        let mut b = ModelBuilder::new("counter");
        let en = b.choice("enable", 2);
        let count = b.state_var("count", 4, 0);
        let cur = b.var_expr(count);
        let bumped = b.add(cur, b.constant(1));
        let limit = b.binary(BinaryOp::Lt, bumped, b.constant(4));
        let wrapped = b.ternary(limit, bumped, b.constant(0));
        let next = b.ternary(b.choice_expr(en), wrapped, cur);
        b.set_next(count, next);
        b.build().unwrap()
    }

    fn step(program: &StepProgram, state: &[u64], choices: &[u64]) -> Vec<u64> {
        let mut engine = crate::CompiledEngine::new(program);
        let mut out = vec![0; program.var_count()];
        engine.begin_state(state).unwrap();
        engine.step_choices(choices, &mut out).unwrap();
        out
    }

    #[test]
    fn compiled_programs_validate() {
        let program = StepProgram::compile(&counter());
        program.validate().unwrap();
    }

    #[test]
    fn sites_are_deterministic_and_nonempty() {
        let program = StepProgram::compile(&counter());
        let a = program_mutation_sites(&program);
        let b = program_mutation_sites(&program);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn every_site_yields_a_valid_runnable_mutant() {
        let model = counter();
        let program = StepProgram::compile(&model);
        for site in program_mutation_sites(&program) {
            let mutant = apply_program_mutation(&program, &site)
                .unwrap_or_else(|e| panic!("{}: {e}", site.label()));
            assert!(mutant.fits(&model));
            mutant.validate().unwrap_or_else(|e| panic!("{}: {e}", site.label()));
            // the mutant must execute without panicking on every input
            for state in 0..4u64 {
                for choice in 0..2u64 {
                    let _ = step(&mutant, &[state], &[choice]);
                }
            }
        }
    }

    #[test]
    fn some_mutant_changes_behavior() {
        let model = counter();
        let program = StepProgram::compile(&model);
        let changed = program_mutation_sites(&program).iter().any(|site| {
            let mutant = apply_program_mutation(&program, site).unwrap();
            (0..4u64)
                .any(|s| (0..2u64).any(|c| step(&mutant, &[s], &[c]) != step(&program, &[s], &[c])))
        });
        assert!(changed, "at least one bytecode mutant must diverge from the original");
    }

    #[test]
    fn bad_sites_are_typed_errors() {
        let program = StepProgram::compile(&counter());
        let n = program.instrs().len();
        assert!(apply_program_mutation(&program, &ProgramMutation::OpFlip { instr: n }).is_err());
        if let Some(i) =
            program.instrs().iter().position(|i| matches!(i.op, Op::StoreMask | Op::StoreMod))
        {
            assert!(
                apply_program_mutation(&program, &ProgramMutation::OpFlip { instr: i }).is_err(),
                "stores must not be flippable"
            );
        }
    }

    #[test]
    fn validate_rejects_corrupt_programs() {
        let program = StepProgram::compile(&counter());
        let regs = program.register_count() as u32;

        let mut oob = program.clone();
        if let Some(i) = oob.instrs.iter_mut().find(|i| matches!(i.op, Op::Add | Op::CondMove)) {
            i.a = regs + 7;
        } else {
            oob.instrs.push(Instr { op: Op::Move, dst: regs + 1, a: 0, b: 0, c: 0 });
        }
        assert!(oob.validate().is_err(), "out-of-range operand must be rejected");

        let mut clobber = program.clone();
        clobber.instrs.push(Instr { op: Op::Move, dst: 0, a: 0, b: 0, c: 0 });
        if clobber.const_regs > 0 {
            assert!(clobber.validate().is_err(), "writes to constant registers must be rejected");
        }

        let mut bad_prefix = program.clone();
        bad_prefix.prefix_len = bad_prefix.instrs.len() + 3;
        assert!(bad_prefix.validate().is_err());
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let program = StepProgram::compile(&counter());
        let sites = program_mutation_sites(&program);
        let labels: std::collections::HashSet<String> = sites.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), sites.len());
    }
}
