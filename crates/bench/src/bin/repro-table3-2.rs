//! Regenerates Table 3.2: state-enumeration statistics of the PP control
//! model, paper column alongside. With a thread count > 1 (second
//! argument or `ARCHVAL_THREADS`) it runs both the sequential and the
//! frontier-parallel enumerator, checks they agree, and reports both
//! timings.
//!
//! `--snapshot <path>` reuses a saved enumeration: if the file exists the
//! enumeration is loaded from it (skipping the enumerate entirely),
//! otherwise the model is enumerated and the result saved there for the
//! next run.
//!
//! `--engine <compiled|tree|batched>` selects the step engine (compiled
//! bytecode by default; all produce identical graphs — `batched` sweeps
//! choice permutations in SoA lane batches sized by `--lanes <N>`). The
//! JSON records the lowering time, lane count and the per-transition
//! cost so before/after comparisons need no extra tooling.
//!
//! `--check-tree` re-enumerates with the tree-walking oracle afterwards
//! and exits non-zero unless the graph dumps are byte-identical — the
//! CI gate for the batched engine.

use serde::{Deserialize, Serialize};

use archval::Engine;
use archval_bench::{
    check_tree_from_args, engine_from_args, header, lanes_from_args, peak_rss_bytes, row,
    scale_from_args, snapshot_from_args, threads_from_args, BenchError,
};
use archval_exec::StepProgram;
use archval_fsm::{
    dump_enum_result, enumerate_parallel_with, enumerate_with, load_enum_result, save_enum_result,
    EngineFactory, EnumConfig,
};
use archval_pp::pp_control_model;

/// Everything `BENCH_table3_2.json` records.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Table32Bench {
    scale: String,
    threads: usize,
    engine: String,
    /// Batch width the enumerator swept choice permutations with (1 for
    /// the scalar engines).
    lanes: usize,
    /// Seconds spent lowering the model to bytecode (zero for `tree`).
    compile_seconds: f64,
    /// Mean cost of one evaluated transition during enumeration.
    ns_per_transition: f64,
    states: u64,
    bits_per_state: u32,
    edges: u64,
    enum_seconds: f64,
    approx_memory_bytes: u64,
    transitions_evaluated: u64,
    builder_peak_bytes: u64,
    graph_bytes: u64,
    graph_finish_seconds: f64,
    from_snapshot: bool,
    snapshot_load_seconds: Option<f64>,
    peak_rss_bytes: Option<u64>,
}

fn main() {
    archval_bench::run("repro-table3-2", body);
}

fn body() -> Result<(), BenchError> {
    let scale = scale_from_args();
    let threads = threads_from_args();
    let snapshot = snapshot_from_args();
    let engine = engine_from_args();
    let lanes = match engine {
        Engine::Batched => lanes_from_args(),
        Engine::Compiled | Engine::Tree => 1,
    };
    let model = pp_control_model(&scale)?;

    let (program, compile_seconds) = match engine {
        Engine::Compiled | Engine::Batched => {
            let t0 = std::time::Instant::now();
            let p = StepProgram::compile(&model);
            let secs = t0.elapsed().as_secs_f64();
            eprintln!(
                "compiled model to {} instructions ({} prefix) / {} registers in {secs:.3} s",
                p.stats().instructions,
                p.stats().prefix_instructions,
                p.register_count()
            );
            (Some(p), secs)
        }
        Engine::Tree => (None, 0.0),
    };
    let factory: &dyn EngineFactory = match &program {
        Some(p) => p,
        None => &model,
    };
    let enum_config = EnumConfig { batch_lanes: lanes, ..EnumConfig::default() };

    let mut from_snapshot = false;
    let mut snapshot_load_seconds = None;
    let r = match &snapshot {
        Some(path) if path.exists() => {
            eprintln!("loading snapshot {} ...", path.display());
            let t0 = std::time::Instant::now();
            let r = load_enum_result(path, &model)?;
            let secs = t0.elapsed().as_secs_f64();
            eprintln!("loaded {} states / {} edges in {secs:.2} s", r.stats.states, r.stats.edges);
            from_snapshot = true;
            snapshot_load_seconds = Some(secs);
            r
        }
        _ => {
            eprintln!(
                "enumerating at {scale:?} with the {engine} engine ... (use `paper` for the \
                 near-paper-scale run)"
            );
            let r = enumerate_with(&model, &enum_config, factory)?;
            if let Some(path) = &snapshot {
                save_enum_result(path, &model, &r)?;
                eprintln!("saved snapshot {}", path.display());
            }
            r
        }
    };

    header(&format!("Table 3.2 — State Enumeration Statistics ({scale:?})"));
    row("Number of States", "229,571", &r.stats.states.to_string());
    row("Number of bits per State", "98", &r.stats.bits_per_state.to_string());
    row(
        "Execution Time",
        "18,307 cpu secs (DS5000/240)",
        &format!("{:.1} s", r.stats.elapsed.as_secs_f64()),
    );
    row(
        "Memory Requirement",
        "34 MB",
        &format!("{:.1} MB", r.stats.approx_memory_bytes as f64 / 1048576.0),
    );
    row("Number of Edges in State Graph", "1,172,848", &r.stats.edges.to_string());
    println!(
        "\nshape check: reachable states are 2^{:.1} out of 2^{} possible — the paper's \n\
         interlocked-FSM pruning (theirs: 2^17.8 out of 2^98).",
        (r.stats.states as f64).log2(),
        r.stats.bits_per_state
    );
    println!(
        "transitions evaluated: {} (every choice combination at every state)",
        r.stats.transitions_evaluated
    );
    println!(
        "graph build: {} duplicate arcs suppressed, builder peak ~{:.1} MB, CSR {:.1} MB, \
         finish {:.3} s",
        r.graph_stats.suppressed_duplicates,
        r.graph_stats.builder_peak_bytes as f64 / 1048576.0,
        r.graph_stats.graph_bytes as f64 / 1048576.0,
        r.graph_stats.finish_seconds
    );

    if threads > 1 && !from_snapshot {
        eprintln!("re-enumerating with {threads} worker threads ...");
        let cfg = EnumConfig { threads, ..enum_config.clone() };
        let p = enumerate_parallel_with(&model, &cfg, factory)?;
        if p.stats.states != r.stats.states || p.stats.edges != r.stats.edges {
            return Err(BenchError::Invalid(format!(
                "parallel enumeration diverged: {}/{} states, {}/{} edges",
                p.stats.states, r.stats.states, p.stats.edges, r.stats.edges
            )));
        }
        let seq = r.stats.elapsed.as_secs_f64();
        let par = p.stats.elapsed.as_secs_f64();
        println!(
            "\nparallel enumeration ({threads} threads): {par:.1} s vs {seq:.1} s sequential \
             ({:.2}x speedup), identical graph",
            seq / par
        );
    }

    if check_tree_from_args() {
        eprintln!("re-enumerating with the tree-walking oracle for the byte-identity gate ...");
        let oracle = enumerate_with(&model, &EnumConfig::default(), &model)?;
        if dump_enum_result(&model, &r) != dump_enum_result(&model, &oracle) {
            return Err(BenchError::Invalid(format!(
                "--check-tree: {engine} (lanes {lanes}) graph dump diverged from the tree oracle"
            )));
        }
        println!("check-tree: graph dump byte-identical to the tree-walking oracle");
    }

    let ns_per_transition = if r.stats.transitions_evaluated > 0 {
        r.stats.elapsed.as_secs_f64() * 1e9 / r.stats.transitions_evaluated as f64
    } else {
        0.0
    };
    println!(
        "engine: {engine} (lanes {lanes}) — lowering {compile_seconds:.3} s, \
         {ns_per_transition:.0} ns per evaluated transition"
    );

    archval_bench::emit_bench_json(
        "table3_2",
        &Table32Bench {
            scale: format!("{scale:?}"),
            threads,
            engine: engine.to_string(),
            lanes,
            compile_seconds,
            ns_per_transition,
            states: r.stats.states as u64,
            bits_per_state: r.stats.bits_per_state,
            edges: r.stats.edges as u64,
            enum_seconds: r.stats.elapsed.as_secs_f64(),
            approx_memory_bytes: r.stats.approx_memory_bytes as u64,
            transitions_evaluated: r.stats.transitions_evaluated,
            builder_peak_bytes: r.graph_stats.builder_peak_bytes,
            graph_bytes: r.graph_stats.graph_bytes,
            graph_finish_seconds: r.graph_stats.finish_seconds,
            from_snapshot,
            snapshot_load_seconds,
            peak_rss_bytes: peak_rss_bytes(),
        },
    )?;
    Ok(())
}
