//! Differential equivalence of the sequential and frontier-parallel
//! enumerators over a grid of models × edge policies × thread counts,
//! plus run-to-run determinism of the parallel enumerator.
//!
//! The parallel merge assigns global state ids by replaying worker
//! results in the sequential scan order, so the equivalence asserted
//! here is exact: same state ids, same packed states, same edges in the
//! same order — not merely the same counts.

use std::collections::BTreeMap;

use archval_fsm::builder::ModelBuilder;
use archval_fsm::enumerate::{enumerate, EnumConfig};
use archval_fsm::parallel::enumerate_parallel;
use archval_fsm::{dump_enum_result, EdgePolicy, Model, StateId};

/// A 5-bit counter with an enable choice: 32 states in a single chain.
fn counter() -> Model {
    let mut b = ModelBuilder::new("counter");
    let en = b.choice("en", 2);
    let v = b.state_var("c", 32, 0);
    let cur = b.var_expr(v);
    let one = b.constant(1);
    let inc = b.add(cur, one);
    let next = b.ternary(b.choice_expr(en), inc, cur);
    b.set_next(v, next);
    b.build().unwrap()
}

/// Two FSMs that stall each other (the paper's interlock shape): the
/// reachable set is a strict subset of the cross product.
fn interlocked() -> Model {
    let mut b = ModelBuilder::new("interlocked");
    let step_a = b.choice("step_a", 2);
    let step_z = b.choice("step_z", 2);
    let a = b.state_var("a", 8, 0);
    let z = b.state_var("z", 8, 0);
    let a_cur = b.var_expr(a);
    let z_cur = b.var_expr(z);
    let one = b.constant(1);
    let eight = b.constant(8);
    let a_inc = b.add(a_cur, one);
    let a_wrap = b.modulo(a_inc, eight);
    let z_inc = b.add(z_cur, one);
    let z_wrap = b.modulo(z_inc, eight);
    let z_zero = b.eq_const(z_cur, 0);
    let a_zero = b.eq_const(a_cur, 0);
    let a_go = b.and(b.choice_expr(step_a), z_zero);
    let z_go = b.and(b.choice_expr(step_z), a_zero);
    let a_next = b.ternary(a_go, a_wrap, a_cur);
    let z_next = b.ternary(z_go, z_wrap, z_cur);
    b.set_next(a, a_next);
    b.set_next(z, z_next);
    b.build().unwrap()
}

/// Aliased conditions: a 3-valued choice whose value never matters, so
/// `FirstLabel` and `AllLabels` graphs genuinely differ.
fn aliased() -> Model {
    let mut b = ModelBuilder::new("aliased");
    let c = b.choice("c", 3);
    let go = b.choice("go", 2);
    let v = b.state_var("x", 4, 0);
    let cur = b.var_expr(v);
    let one = b.constant(1);
    let four = b.constant(4);
    let inc = b.add(cur, one);
    let wrap = b.modulo(inc, four);
    let _ = c; // deliberately unused: all three values alias
    let next = b.ternary(b.choice_expr(go), wrap, cur);
    b.set_next(v, next);
    b.build().unwrap()
}

/// State wider than 64 bits (three 32-bit variables, 96 bits packed),
/// exercising the cross-word paths of `StateLayout::pack`/`unpack` and
/// multi-word interning keys. Each variable hops around a 4-element orbit
/// inside its huge domain, so the reachable set stays small.
fn cross_word() -> Model {
    let size: u64 = 1 << 32;
    let hop = size / 4;
    let mut b = ModelBuilder::new("cross_word");
    let c1 = b.choice("c1", 2);
    let c2 = b.choice("c2", 2);
    let c3 = b.choice("c3", 2);
    for (name, choice) in [("p", c1), ("q", c2), ("r", c3)] {
        let v = b.state_var(name, size, 0);
        let cur = b.var_expr(v);
        let hop_e = b.constant(hop);
        let size_e = b.constant(size);
        let bumped = b.add(cur, hop_e);
        let wrapped = b.modulo(bumped, size_e);
        let next = b.ternary(b.choice_expr(choice), wrapped, cur);
        b.set_next(v, next);
    }
    b.build().unwrap()
}

fn models() -> Vec<Model> {
    vec![counter(), interlocked(), aliased(), cross_word()]
}

/// The exact-equality check: ids, packed states, edges, stats.
fn assert_identical(model: &Model, seq: &archval_fsm::EnumResult, par: &archval_fsm::EnumResult) {
    let name = model.name();
    assert_eq!(par.graph.state_count(), seq.graph.state_count(), "{name}: state count");
    assert_eq!(par.graph.edge_count(), seq.graph.edge_count(), "{name}: edge count");
    assert_eq!(par.stats.states, seq.stats.states, "{name}: stats.states");
    assert_eq!(par.stats.edges, seq.stats.edges, "{name}: stats.edges");
    assert_eq!(par.stats.max_depth, seq.stats.max_depth, "{name}: max depth");
    assert_eq!(
        par.stats.transitions_evaluated, seq.stats.transitions_evaluated,
        "{name}: transitions"
    );
    for s in 0..seq.graph.state_count() as u32 {
        assert_eq!(par.table.packed(s), seq.table.packed(s), "{name}: state {s} packing");
        assert_eq!(
            par.graph.edges(StateId(s)),
            seq.graph.edges(StateId(s)),
            "{name}: edges of state {s}"
        );
    }
}

#[test]
fn parallel_matches_sequential_across_grid() {
    for model in models() {
        for policy in [EdgePolicy::FirstLabel, EdgePolicy::AllLabels] {
            let cfg = EnumConfig { edge_policy: policy, ..EnumConfig::default() };
            let seq = enumerate(&model, &cfg).unwrap();
            for threads in [1usize, 2, 8] {
                let pcfg = EnumConfig { threads, ..cfg.clone() };
                let par = enumerate_parallel(&model, &pcfg).unwrap();
                assert_identical(&model, &seq, &par);
            }
        }
    }
}

/// Even without the exact-id guarantee, the *canonical* content must
/// agree: the set of packed states and the multiset of
/// `(src packed, dst packed, label)` edges, independent of id numbering.
#[test]
fn canonical_state_sets_and_edge_multisets_agree() {
    for model in models() {
        let seq = enumerate(&model, &EnumConfig::default()).unwrap();
        let par = enumerate_parallel(&model, &EnumConfig { threads: 8, ..EnumConfig::default() })
            .unwrap();
        let canon = |r: &archval_fsm::EnumResult| {
            let states: Vec<Vec<u64>> = {
                let mut v: Vec<Vec<u64>> =
                    (0..r.graph.state_count() as u32).map(|s| r.table.packed(s).to_vec()).collect();
                v.sort_unstable();
                v
            };
            let mut edges: BTreeMap<(Vec<u64>, Vec<u64>, u64), usize> = BTreeMap::new();
            for (src, e) in r.graph.iter_edges() {
                let key =
                    (r.table.packed(src.0).to_vec(), r.table.packed(e.dst.0).to_vec(), e.label);
                *edges.entry(key).or_default() += 1;
            }
            (states, edges)
        };
        assert_eq!(canon(&seq), canon(&par), "{}", model.name());
    }
}

#[test]
fn parallel_dump_is_deterministic_across_runs() {
    for model in models() {
        for threads in [2usize, 8] {
            let cfg = EnumConfig { threads, ..EnumConfig::default() };
            let a = enumerate_parallel(&model, &cfg).unwrap();
            let b = enumerate_parallel(&model, &cfg).unwrap();
            let dump_a = dump_enum_result(&model, &a);
            let dump_b = dump_enum_result(&model, &b);
            assert_eq!(dump_a, dump_b, "{}: two runs diverged", model.name());
            // and both equal the sequential dump — ids are canonical
            let seq = enumerate(&model, &EnumConfig::default()).unwrap();
            assert_eq!(dump_a, dump_enum_result(&model, &seq), "{}", model.name());
        }
    }
}

#[test]
fn cross_word_model_really_crosses_words() {
    let model = cross_word();
    let r = enumerate(&model, &EnumConfig::default()).unwrap();
    assert_eq!(r.stats.bits_per_state, 96);
    assert_eq!(r.graph.state_count(), 64);
    assert!(r.table.packed(0).len() >= 2, "state must span two words");
}
