//! Shared helpers for the `repro-*` binaries and criterion benches.

use archval_pp::PpScale;

/// Parses a scale argument (`micro|standard|full|paper`), defaulting to
/// `standard`.
pub fn scale_from_args() -> PpScale {
    match std::env::args().nth(1).as_deref() {
        Some("micro") => PpScale::micro(),
        Some("full") => PpScale::full(),
        Some("paper") => PpScale::paper(),
        Some("standard") | None => PpScale::standard(),
        Some(other) => {
            eprintln!("unknown scale `{other}`; use micro|standard|full|paper");
            std::process::exit(2);
        }
    }
}

/// Parses the worker-thread count from the second positional argument or
/// the `ARCHVAL_THREADS` environment variable, defaulting to `1`
/// (sequential). The repro binaries produce identical numbers for any
/// value; threads only change wall-clock time.
pub fn threads_from_args() -> usize {
    let arg = std::env::args().nth(2).or_else(|| std::env::var("ARCHVAL_THREADS").ok());
    match arg.as_deref().map(str::parse::<usize>) {
        None => 1,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => {
            eprintln!("thread count must be a positive integer");
            std::process::exit(2);
        }
    }
}

/// Writes a machine-readable result file `BENCH_<name>.json` for one
/// experiment, returning the path.
///
/// The directory comes from `ARCHVAL_BENCH_DIR` when set (CI points this
/// at its artifact directory), otherwise the current directory.
///
/// # Panics
///
/// Panics if serialization or the write fails — in a repro binary a lost
/// result should be loud.
pub fn emit_bench_json<T: serde::Serialize>(name: &str, value: &T) -> std::path::PathBuf {
    let dir = std::env::var("ARCHVAL_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("result serializes");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
    path
}

/// Prints a two-column paper-vs-measured table row.
pub fn row(label: &str, paper: &str, measured: &str) {
    println!("{label:<42} {paper:>18} {measured:>18}");
}

/// Prints the table header.
pub fn header(title: &str) {
    println!("== {title} ==");
    println!("{:<42} {:>18} {:>18}", "", "paper", "measured");
}
