//! Frontier-parallel breadth-first state enumeration.
//!
//! Parallelises the explicit-state search of [`enumerate`] by processing
//! each BFS depth level as a batch: the frontier is split into chunks
//! that a pool of `std::thread` workers claims with an atomic cursor.
//! Every worker evaluates transitions with its own [`Evaluator`] and
//! interns successor states into a lock-striped, sharded table (states
//! are routed to shards by a fixed-seed hash of their packed words, so
//! sharding is deterministic across runs and thread counts).
//!
//! Workers do *not* assign state ids. They emit `(src, code, shard,
//! slot)` tuples in evaluation order; after the level completes, a
//! deterministic single-threaded merge replays those tuples in
//! `(frontier position, choice code)` order — exactly the order the
//! sequential enumerator scans — assigning fresh global ids on first
//! reference and recording edges under the configured [`EdgePolicy`].
//! Because the merge scan order equals the sequential discovery order,
//! the parallel enumerator is *bit-identical* to [`enumerate`]: same
//! [`StateId`] assignment, same graph, same edge labels, for any thread
//! count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::engine::EngineFactory;
use crate::enumerate::{enumerate_with, EnumConfig, EnumResult, Truncation};
use crate::error::Error;
use crate::graph::{GraphBuilder, StateId};
use crate::model::Model;
use crate::pack::{StateLayout, StateTable};
use crate::stats::EnumStats;

/// Slot marker for states interned by a worker but not yet given a
/// global id by the merge.
const UNASSIGNED: u32 = u32::MAX;

/// One stripe of the shared visited-state index.
#[derive(Default)]
struct Shard {
    /// Packed words of every state interned into this shard, slot-major.
    words: Vec<u64>,
    /// Packed state -> slot within this shard.
    index: HashMap<Box<[u64]>, u32>,
    /// Slot -> global [`StateId`], `UNASSIGNED` until the merge names it.
    global: Vec<u32>,
}

impl Shard {
    /// Interns `packed`, returning its slot.
    fn intern(&mut self, packed: &[u64], words_per_state: usize) -> (u32, bool) {
        if let Some(&slot) = self.index.get(packed) {
            return (slot, false);
        }
        let slot = (self.words.len() / words_per_state) as u32;
        self.words.extend_from_slice(packed);
        self.index.insert(packed.to_vec().into_boxed_slice(), slot);
        self.global.push(UNASSIGNED);
        (slot, true)
    }
}

/// One transition found by a worker, in need of a global dst id.
struct EdgeRec {
    src: u32,
    code: u64,
    shard: u32,
    slot: u32,
}

/// Fixed-seed mixer over packed state words (splitmix64-style finalizer).
/// `HashMap`'s SipHash key is randomised per process, so shard routing
/// uses this instead — determinism of the shard assignment is part of
/// what makes two runs byte-identical.
fn shard_hash(words: &[u64]) -> u64 {
    let mut h: u64 = 0x243F_6A88_85A3_08D3; // pi, nothing up the sleeve
    for &w in words {
        let mut z = w.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(h);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// Enumerates all reachable states like [`enumerate`], but fans each BFS
/// level out across `config.threads` worker threads.
///
/// The result is guaranteed identical to the sequential enumerator's —
/// same state ids, same graph, same stats modulo timing — for any thread
/// count; `threads <= 1` simply runs [`enumerate`].
///
/// # Errors
///
/// Returns [`Error::StateLimit`] if the reachable set exceeds
/// `config.state_limit`, or an evaluation error from a malformed model.
///
/// # Example
///
/// ```
/// use archval_fsm::builder::ModelBuilder;
/// use archval_fsm::enumerate::EnumConfig;
/// use archval_fsm::parallel::enumerate_parallel;
///
/// let mut b = ModelBuilder::new("bit");
/// let set = b.choice("set", 2);
/// let v = b.state_var("v", 2, 0);
/// b.set_next(v, b.choice_expr(set));
/// let m = b.build()?;
/// let cfg = EnumConfig { threads: 4, ..EnumConfig::default() };
/// let r = enumerate_parallel(&m, &cfg)?;
/// assert_eq!(r.graph.state_count(), 2);
/// assert_eq!(r.graph.edge_count(), 4);
/// # Ok::<(), archval_fsm::Error>(())
/// ```
pub fn enumerate_parallel(model: &Model, config: &EnumConfig) -> Result<EnumResult, Error> {
    enumerate_parallel_with(model, config, model)
}

/// [`enumerate_parallel`] with an explicit step-engine factory; each
/// worker thread spawns its own engine instance from the shared factory.
/// Like the tree default, the result is bit-identical to the sequential
/// enumerator for any thread count.
///
/// # Errors
///
/// As [`enumerate_parallel`].
pub fn enumerate_parallel_with(
    model: &Model,
    config: &EnumConfig,
    factory: &dyn EngineFactory,
) -> Result<EnumResult, Error> {
    if config.threads <= 1 {
        return enumerate_with(model, config, factory);
    }
    model.validate()?;
    let start = Instant::now();
    let threads = config.threads;
    let layout = StateLayout::new(model);
    let bits = layout.total_bits();
    let wps = layout.words(); // words per packed state

    let n_vars = model.vars().len();
    let n_choices = model.choices().len();
    let choice_sizes: Vec<u64> = model.choices().iter().map(|c| c.size).collect();
    let lanes_max = config.batch_lanes.max(1);
    let combos: u64 = choice_sizes.iter().product();

    let num_shards = (threads * 8).next_power_of_two();
    let shard_mask = (num_shards - 1) as u64;
    let shards: Vec<Mutex<Shard>> = (0..num_shards).map(|_| Mutex::new(Shard::default())).collect();

    // Global-id-indexed packed states; doubles as the frontier storage
    // (level L is the id range assigned while merging level L-1).
    let mut all_words: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new(config.edge_policy);
    let mut depth_of: Vec<usize> = Vec::new();
    let mut max_depth = 0usize;
    let transitions = AtomicU64::new(0);
    // Distinct states seen so far (assigned + fresh worker interns); lets
    // workers bail out early once the state limit is irrecoverably blown.
    let total_states = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let limit_hit = AtomicBool::new(false);
    let first_error: Mutex<Option<(usize, Error)>> = Mutex::new(None);
    // Budget bookkeeping: workers flush their transition counts here per
    // state so mid-level budget checks see live totals, and record the
    // first bound that fired. Unlike `limit_hit`, a fired budget is not
    // an error — the level's partial edge lists are still merged and the
    // truncated result returned.
    let budgeted = !config.budget.is_unbounded();
    let live_transitions = AtomicU64::new(0);
    let budget_cut: Mutex<Option<Truncation>> = Mutex::new(None);

    // The batched sweep evaluates the identical code sequence 0..combos
    // at every state, and workers never split a batch mid-sweep (their
    // budget checks are per-state), so the lane transposition is done
    // once here and shared read-only by every worker — the sequential
    // enumerator's precomputed-choice-block fast path.
    let batch_blocks: Vec<(usize, Vec<u64>)> = if lanes_max > 1 {
        let mut blocks = Vec::new();
        let mut choices = vec![0u64; n_choices];
        let mut code = 0u64;
        while code < combos {
            let n = (combos - code).min(lanes_max as u64) as usize;
            let mut block = vec![0u64; n_choices * n];
            for l in 0..n {
                for (c, &v) in choices.iter().enumerate() {
                    block[c * n + l] = v;
                }
                let mut k = 0;
                while k < n_choices {
                    choices[k] += 1;
                    if choices[k] < choice_sizes[k] {
                        break;
                    }
                    choices[k] = 0;
                    k += 1;
                }
            }
            blocks.push((n, block));
            code += n as u64;
        }
        blocks
    } else {
        Vec::new()
    };

    // Seed the search: reset state is id 0, interned into its home shard.
    {
        let reset = model.reset_state();
        let mut packed = vec![0u64; wps];
        layout.pack(&reset, &mut packed);
        let shard_ix = (shard_hash(&packed) & shard_mask) as usize;
        let mut shard = shards[shard_ix].lock().unwrap();
        let (slot, fresh) = shard.intern(&packed, wps);
        debug_assert!(fresh);
        shard.global[slot as usize] = 0;
        all_words.extend_from_slice(&packed);
        depth_of.push(0);
        builder.ensure_state(StateId(0));
        total_states.store(1, Ordering::Relaxed);
    }

    let mut level_start: usize = 0; // first id of the current frontier
    let mut progress_printed: usize = 0;
    let mut truncated: Option<Truncation> = None;

    while level_start * wps < all_words.len() {
        let level_end = all_words.len() / wps;
        let frontier_len = level_end - level_start;
        let chunk_size = (frontier_len.div_ceil(threads * 8)).clamp(1, 2048);
        let num_chunks = frontier_len.div_ceil(chunk_size);
        let next_chunk = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Vec<EdgeRec>)>> = Mutex::new(Vec::with_capacity(num_chunks));
        let frontier_words = &all_words[level_start * wps..];

        std::thread::scope(|scope| {
            for _ in 0..threads.min(num_chunks) {
                scope.spawn(|| {
                    let mut engine = factory.spawn();
                    let mut cur_values = vec![0u64; n_vars];
                    let mut next_values = vec![0u64; n_vars];
                    let mut choices = vec![0u64; n_choices];
                    let mut packed = vec![0u64; wps];
                    let mut local_transitions = 0u64;
                    let mut flushed_transitions = 0u64;
                    let mut batch_out =
                        if lanes_max > 1 { vec![0u64; n_vars * lanes_max] } else { Vec::new() };
                    loop {
                        let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if chunk >= num_chunks || stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let lo = chunk * chunk_size;
                        let hi = (lo + chunk_size).min(frontier_len);
                        let mut edges: Vec<EdgeRec> = Vec::new();
                        'states: for pos in lo..hi {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            if budgeted {
                                live_transitions.fetch_add(
                                    local_transitions - flushed_transitions,
                                    Ordering::Relaxed,
                                );
                                flushed_transitions = local_transitions;
                                if let Some(t) = config.budget.check(
                                    total_states.load(Ordering::Relaxed),
                                    live_transitions.load(Ordering::Relaxed),
                                    start,
                                ) {
                                    let mut cut = budget_cut.lock().unwrap();
                                    if cut.is_none() {
                                        *cut = Some(t);
                                    }
                                    stop.store(true, Ordering::Relaxed);
                                    break 'states;
                                }
                            }
                            let src = (level_start + pos) as u32;
                            layout.unpack(
                                &frontier_words[pos * wps..(pos + 1) * wps],
                                &mut cur_values,
                            );
                            if let Err(e) = engine.begin_state(&cur_values) {
                                let mut slot = first_error.lock().unwrap();
                                if slot.as_ref().is_none_or(|(c, _)| chunk < *c) {
                                    *slot = Some((chunk, e));
                                }
                                stop.store(true, Ordering::Relaxed);
                                break 'states;
                            }
                            choices.iter_mut().for_each(|c| *c = 0);
                            let mut code: u64 = 0;
                            if lanes_max > 1 {
                                // batched sweep: workers have no mid-sweep
                                // budget checks, so batches run full width
                                // over the shared precomputed choice blocks.
                                // Consecutive permutations usually land on
                                // the same successor; remembering the
                                // previous lane's values and (shard, slot)
                                // skips the pack + shard lock + intern for
                                // identical lanes — a repeated value is
                                // never fresh, so no state-limit
                                // bookkeeping is skipped with it, and the
                                // emitted EdgeRec stream is unchanged.
                                let mut have_prev = false;
                                let mut prev_shard = 0u32;
                                let mut prev_slot = 0u32;
                                for (n, block) in &batch_blocks {
                                    let n = *n;
                                    let step = engine.step_batch(
                                        n,
                                        &block[..n_choices * n],
                                        &mut batch_out[..n_vars * n],
                                    );
                                    let ok_lanes = match &step {
                                        Ok(()) => n,
                                        Err(e) => e.lane,
                                    };
                                    for l in 0..ok_lanes {
                                        let mut same = have_prev;
                                        for (v, slot) in next_values.iter_mut().enumerate() {
                                            let val = batch_out[v * n + l];
                                            same = same && *slot == val;
                                            *slot = val;
                                        }
                                        local_transitions += 1;
                                        let (shard_ix, slot) = if same {
                                            (prev_shard, prev_slot)
                                        } else {
                                            layout.pack(&next_values, &mut packed);
                                            let shard_ix =
                                                (shard_hash(&packed) & shard_mask) as usize;
                                            let (slot, fresh) = {
                                                let mut shard = shards[shard_ix].lock().unwrap();
                                                shard.intern(&packed, wps)
                                            };
                                            if fresh
                                                && total_states.fetch_add(1, Ordering::Relaxed) + 1
                                                    > config.state_limit
                                            {
                                                limit_hit.store(true, Ordering::Relaxed);
                                                stop.store(true, Ordering::Relaxed);
                                            }
                                            (shard_ix as u32, slot)
                                        };
                                        prev_shard = shard_ix;
                                        prev_slot = slot;
                                        have_prev = true;
                                        edges.push(EdgeRec {
                                            src,
                                            code: code + l as u64,
                                            shard: shard_ix,
                                            slot,
                                        });
                                    }
                                    if let Err(e) = step {
                                        let mut guard = first_error.lock().unwrap();
                                        if guard.as_ref().is_none_or(|(c, _)| chunk < *c) {
                                            *guard = Some((chunk, e.error));
                                        }
                                        stop.store(true, Ordering::Relaxed);
                                        break 'states;
                                    }
                                    code += n as u64;
                                }
                                continue;
                            }
                            loop {
                                if let Err(e) = engine.step_choices(&choices, &mut next_values) {
                                    let mut slot = first_error.lock().unwrap();
                                    if slot.as_ref().is_none_or(|(c, _)| chunk < *c) {
                                        *slot = Some((chunk, e));
                                    }
                                    stop.store(true, Ordering::Relaxed);
                                    break 'states;
                                }
                                local_transitions += 1;
                                layout.pack(&next_values, &mut packed);
                                let shard_ix = (shard_hash(&packed) & shard_mask) as usize;
                                let (slot, fresh) = {
                                    let mut shard = shards[shard_ix].lock().unwrap();
                                    shard.intern(&packed, wps)
                                };
                                if fresh
                                    && total_states.fetch_add(1, Ordering::Relaxed) + 1
                                        > config.state_limit
                                {
                                    limit_hit.store(true, Ordering::Relaxed);
                                    stop.store(true, Ordering::Relaxed);
                                }
                                edges.push(EdgeRec { src, code, shard: shard_ix as u32, slot });

                                // advance the mixed-radix choice counter
                                let mut k = 0;
                                loop {
                                    if k == n_choices {
                                        break;
                                    }
                                    choices[k] += 1;
                                    if choices[k] < choice_sizes[k] {
                                        break;
                                    }
                                    choices[k] = 0;
                                    k += 1;
                                }
                                code += 1;
                                if k == n_choices {
                                    break;
                                }
                            }
                        }
                        results.lock().unwrap().push((chunk, edges));
                    }
                    transitions.fetch_add(local_transitions, Ordering::Relaxed);
                });
            }
        });

        if let Some((_, e)) = first_error.lock().unwrap().take() {
            return Err(e);
        }
        if limit_hit.load(Ordering::Relaxed) {
            return Err(Error::StateLimit { limit: config.state_limit });
        }
        // a fired budget still merges the level's partial edge lists (the
        // workers push what they evaluated before stopping), so the
        // truncated result is a well-formed graph over everything seen
        let cut = budget_cut.lock().unwrap().take();

        // Deterministic merge: replay the level's transitions in
        // (frontier position, code) order — the sequential scan order —
        // assigning global ids at first reference.
        let mut chunks = results.into_inner().unwrap();
        chunks.sort_unstable_by_key(|&(ix, _)| ix);
        let level_depth = depth_of[level_start] + 1;
        // every state this level's merge can reference is already interned
        // in a shard, so one reservation from the interned total (the next
        // frontier bound) replaces per-add_edge growth; likewise the edge
        // arrays get the level's exact transition count up front
        builder.reserve_states(total_states.load(Ordering::Relaxed));
        builder.reserve_edges(chunks.iter().map(|(_, e)| e.len()).sum());
        for (_, edges) in chunks {
            for rec in edges {
                let mut shard = shards[rec.shard as usize].lock().unwrap();
                let mut dst = shard.global[rec.slot as usize];
                if dst == UNASSIGNED {
                    dst = (all_words.len() / wps) as u32;
                    if dst as usize + 1 > config.state_limit {
                        return Err(Error::StateLimit { limit: config.state_limit });
                    }
                    shard.global[rec.slot as usize] = dst;
                    let lo = rec.slot as usize * wps;
                    all_words.extend_from_slice(&shard.words[lo..lo + wps]);
                    depth_of.push(level_depth);
                    max_depth = max_depth.max(level_depth);
                }
                drop(shard);
                builder.add_edge(StateId(rec.src), StateId(dst), rec.code);
            }
        }

        let states_now = all_words.len() / wps;
        if config.progress_every != usize::MAX
            && states_now / config.progress_every > progress_printed
        {
            progress_printed = states_now / config.progress_every;
            eprintln!("enumerate: {} states, {} edges", states_now, builder.edge_count());
        }
        if let Some(t) = cut {
            truncated = Some(t);
            break;
        }
        if budgeted {
            // level-boundary check: the merge itself can push the state
            // count past the bound, and a deadline can expire between
            // levels without any worker noticing
            truncated = config.budget.check(states_now, transitions.load(Ordering::Relaxed), start);
            if truncated.is_some() {
                break;
            }
        }
        level_start = level_end;
    }

    // Rebuild the dense id -> packed table in id order.
    let mut table = StateTable::new(layout);
    for id in 0..all_words.len() / wps {
        let (got, fresh) = table.intern_packed(&all_words[id * wps..(id + 1) * wps]);
        debug_assert!(fresh && got as usize == id);
    }

    let (graph, graph_stats) = builder.finish()?;
    let elapsed = start.elapsed();
    let approx_memory_bytes = table.approx_bytes() + graph_stats.graph_bytes as usize;
    let stats = EnumStats {
        states: table.len(),
        bits_per_state: bits,
        edges: graph.edge_count(),
        elapsed,
        approx_memory_bytes,
        transitions_evaluated: transitions.load(Ordering::Relaxed),
        max_depth,
    };
    Ok(EnumResult { graph, table, stats, graph_stats, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::enumerate::enumerate;
    use crate::graph::EdgePolicy;

    fn counter() -> Model {
        let mut b = ModelBuilder::new("cnt");
        let en = b.choice("en", 2);
        let v = b.state_var("c", 8, 0);
        let cur = b.var_expr(v);
        let one = b.constant(1);
        let inc = b.add(cur, one);
        let next = b.ternary(b.choice_expr(en), inc, cur);
        b.set_next(v, next);
        b.build().unwrap()
    }

    #[test]
    fn matches_sequential_on_counter() {
        let m = counter();
        let seq = enumerate(&m, &EnumConfig::default()).unwrap();
        for threads in [2, 3, 8] {
            let cfg = EnumConfig { threads, ..EnumConfig::default() };
            let par = enumerate_parallel(&m, &cfg).unwrap();
            assert_eq!(par.graph.state_count(), seq.graph.state_count());
            assert_eq!(par.graph.edge_count(), seq.graph.edge_count());
            assert_eq!(par.stats.max_depth, seq.stats.max_depth);
            assert_eq!(par.stats.transitions_evaluated, seq.stats.transitions_evaluated);
            for s in 0..seq.graph.state_count() as u32 {
                assert_eq!(par.table.packed(s), seq.table.packed(s), "state {s}");
                assert_eq!(par.graph.edges(StateId(s)), seq.graph.edges(StateId(s)));
            }
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let m = counter();
        let cfg = EnumConfig { threads: 1, ..EnumConfig::default() };
        let r = enumerate_parallel(&m, &cfg).unwrap();
        assert_eq!(r.graph.state_count(), 8);
        assert_eq!(r.graph.edge_count(), 16);
    }

    #[test]
    fn state_limit_enforced_in_parallel() {
        let cfg = EnumConfig { state_limit: 4, threads: 4, ..EnumConfig::default() };
        assert_eq!(
            enumerate_parallel(&counter(), &cfg).unwrap_err(),
            Error::StateLimit { limit: 4 }
        );
    }

    #[test]
    fn state_budget_truncates_in_parallel() {
        use crate::enumerate::EnumBudget;
        let cfg = EnumConfig {
            threads: 4,
            budget: EnumBudget { max_states: Some(4), ..EnumBudget::default() },
            ..EnumConfig::default()
        };
        let r = enumerate_parallel(&counter(), &cfg).unwrap();
        assert_eq!(r.truncated, Some(Truncation::States));
        assert!(r.graph.state_count() >= 4);
        assert!(r.graph.state_count() < 8, "got {}", r.graph.state_count());
        // the partial table still decodes its states
        assert_eq!(r.table.packed(0).len(), r.table.layout().words());
    }

    #[test]
    fn generous_budget_is_bit_identical_to_unbudgeted_parallel() {
        use crate::enumerate::EnumBudget;
        let m = counter();
        let free =
            enumerate_parallel(&m, &EnumConfig { threads: 3, ..EnumConfig::default() }).unwrap();
        let budgeted = enumerate_parallel(
            &m,
            &EnumConfig {
                threads: 3,
                budget: EnumBudget {
                    max_states: Some(1_000),
                    max_transitions: Some(1_000_000),
                    deadline: Some(std::time::Duration::from_secs(3600)),
                },
                ..EnumConfig::default()
            },
        )
        .unwrap();
        assert!(budgeted.is_complete());
        assert_eq!(budgeted.graph, free.graph);
        for s in 0..free.graph.state_count() as u32 {
            assert_eq!(budgeted.table.packed(s), free.table.packed(s));
        }
    }

    #[test]
    fn batched_workers_match_sequential_across_lane_counts() {
        let m = counter();
        let seq = enumerate(&m, &EnumConfig::default()).unwrap();
        for lanes in [1, 2, 3, 64] {
            for threads in [2, 4] {
                let cfg = EnumConfig { threads, batch_lanes: lanes, ..EnumConfig::default() };
                let par = enumerate_parallel(&m, &cfg).unwrap();
                assert_eq!(par.graph, seq.graph, "lanes={lanes} threads={threads}");
                assert_eq!(par.stats.transitions_evaluated, seq.stats.transitions_evaluated);
                for s in 0..seq.graph.state_count() as u32 {
                    assert_eq!(par.table.packed(s), seq.table.packed(s));
                }
            }
        }
    }

    #[test]
    fn evaluation_errors_propagate_from_workers() {
        let mut b = ModelBuilder::new("z");
        let v = b.state_var("x", 4, 1);
        let cur = b.var_expr(v);
        let zero = b.constant(0);
        b.set_next(v, b.modulo(cur, zero));
        let m = b.build().unwrap();
        let cfg = EnumConfig { threads: 4, ..EnumConfig::default() };
        assert_eq!(enumerate_parallel(&m, &cfg).unwrap_err(), Error::DivisionByZero);
    }

    #[test]
    fn all_labels_policy_matches_sequential() {
        let mut b = ModelBuilder::new("m");
        b.choice("c", 2);
        let v = b.state_var("x", 2, 1);
        b.set_next(v, b.constant(0));
        let m = b.build().unwrap();
        for policy in [EdgePolicy::FirstLabel, EdgePolicy::AllLabels] {
            let seq = enumerate(&m, &EnumConfig { edge_policy: policy, ..EnumConfig::default() })
                .unwrap();
            let par = enumerate_parallel(
                &m,
                &EnumConfig { edge_policy: policy, threads: 3, ..EnumConfig::default() },
            )
            .unwrap();
            assert_eq!(par.graph.edge_count(), seq.graph.edge_count(), "{policy:?}");
            for s in 0..seq.graph.state_count() as u32 {
                assert_eq!(par.graph.edges(StateId(s)), seq.graph.edges(StateId(s)));
            }
        }
    }
}
