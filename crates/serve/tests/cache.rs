//! Graph-cache behaviour under contention, memory pressure and disk
//! corruption.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};

use archval_fsm::{Model, ModelBuilder};
use archval_serve::{CacheConfig, CacheWarning, GraphCache, LoadSource};

fn counter_model(size: u64) -> Model {
    let mut b = ModelBuilder::new("cnt");
    let en = b.choice("en", 2);
    let v = b.state_var("c", size, 0);
    let cur = b.var_expr(v);
    let one = b.constant(1);
    let inc = b.add(cur, one);
    let next = b.ternary(b.choice_expr(en), inc, cur);
    b.set_next(v, next);
    b.build().unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("archval-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Concurrent requests for one fingerprint perform exactly one load; the
/// rest share the entry (no thundering herd).
#[test]
fn concurrent_same_fingerprint_requests_load_once() {
    const CLIENTS: usize = 8;
    let cache = Arc::new(GraphCache::new(CacheConfig::default()));
    let model = Arc::new(counter_model(64));
    let barrier = Arc::new(Barrier::new(CLIENTS));

    let entries: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let cache = cache.clone();
            let model = model.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let (entry, _) = cache.get(&model, &mut |_| {}).unwrap();
                entry
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    for e in &entries[1..] {
        assert!(Arc::ptr_eq(&entries[0], e), "all requesters must share one entry");
        assert!(entries[0].enumd.graph.ptr_eq(&e.enumd.graph));
    }
    assert_eq!(
        cache.counters.enumerations.load(Ordering::Relaxed),
        1,
        "exactly one requester enumerates"
    );
    assert_eq!(cache.counters.snapshot_loads.load(Ordering::Relaxed), 0);
    assert_eq!(
        cache.counters.hits.load(Ordering::Relaxed),
        (CLIENTS - 1) as u64,
        "everyone else hits the shared entry"
    );
    assert_eq!(cache.resident_count(), 1);
}

/// Under the byte cap, inserting a second graph evicts the
/// least-recently-used entry; the evicted graph stays one snapshot load
/// away and its memory is released.
#[test]
fn eviction_under_memory_cap_frees_snapshot_backed_entry() {
    let dir = temp_dir("evict");
    let small = counter_model(16);
    let big = counter_model(200);

    // measure both graphs' resident charge with an uncapped throwaway
    let probe = GraphCache::new(CacheConfig::default());
    let (small_entry, _) = probe.get(&small, &mut |_| {}).unwrap();
    let (big_entry, _) = probe.get(&big, &mut |_| {}).unwrap();
    let cap = small_entry.bytes + big_entry.bytes - 1;
    drop(probe);

    let cache = GraphCache::new(CacheConfig {
        snapshot_dir: Some(dir.clone()),
        max_bytes: cap,
        ..CacheConfig::default()
    });
    let (resident_small, _) = cache.get(&small, &mut |_| {}).unwrap();
    let fp_small = resident_small.fingerprint;
    assert!(cache.contains(fp_small));
    let weak_small = Arc::downgrade(&resident_small);
    drop(resident_small);

    let (resident_big, _) = cache.get(&big, &mut |_| {}).unwrap();
    assert_eq!(cache.counters.evictions.load(Ordering::Relaxed), 1);
    assert!(!cache.contains(fp_small), "LRU entry is gone");
    assert!(cache.contains(resident_big.fingerprint), "new entry survives its own insert");
    assert!(
        cache.resident_bytes() <= cap,
        "resident bytes ({}) exceed the cap ({cap})",
        cache.resident_bytes()
    );
    assert!(
        weak_small.upgrade().is_none(),
        "eviction must release the entry's memory once callers drop it"
    );

    // the evicted graph reloads from its snapshot, not by re-enumerating
    let before = cache.counters.enumerations.load(Ordering::Relaxed);
    let (_again, source) = cache.get(&small, &mut |_| {}).unwrap();
    assert_eq!(source, LoadSource::Snapshot);
    assert_eq!(cache.counters.enumerations.load(Ordering::Relaxed), before);
    assert_eq!(cache.counters.snapshot_loads.load(Ordering::Relaxed), 1);

    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted snapshot degrades to a typed warning plus re-enumeration
/// — and never poisons the cache: the entry is served, later requests
/// hit it, and the snapshot is rewritten so the next cold start is clean.
#[test]
fn corrupted_snapshot_falls_back_with_typed_warning() {
    let dir = temp_dir("corrupt");
    let model = counter_model(32);
    let config = CacheConfig { snapshot_dir: Some(dir.clone()), ..CacheConfig::default() };

    // seed a valid snapshot, then corrupt it in place
    let seeder = GraphCache::new(config.clone());
    seeder.get(&model, &mut |_| {}).unwrap();
    let path = seeder.snapshot_path(model.fingerprint()).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    drop(seeder);

    let cache = GraphCache::new(config.clone());
    let mut warnings = Vec::new();
    let (entry, source) = cache.get(&model, &mut |w| warnings.push(w)).unwrap();
    assert_eq!(source, LoadSource::Enumerated, "corrupt snapshot must re-enumerate");
    assert_eq!(cache.counters.corrupt_snapshots.load(Ordering::Relaxed), 1);
    assert_eq!(warnings.len(), 1, "exactly one typed warning: {warnings:?}");
    match &warnings[0] {
        CacheWarning::CorruptSnapshot { path: warned, detail } => {
            assert_eq!(warned, &path);
            assert!(!detail.is_empty());
        }
        other => panic!("expected CorruptSnapshot, got {other:?}"),
    }
    assert_eq!(entry.enumd.graph.state_count(), 32);

    // not poisoned: the same cache now hits, with no further warnings
    let (again, source) = cache.get(&model, &mut |w| warnings.push(w)).unwrap();
    assert_eq!(source, LoadSource::Hit);
    assert!(Arc::ptr_eq(&entry, &again));
    assert_eq!(warnings.len(), 1);

    // the rebuilt snapshot replaced the corrupt file: a fresh cache loads it
    let fresh = GraphCache::new(config);
    let (_, source) = fresh.get(&model, &mut |w| warnings.push(w)).unwrap();
    assert_eq!(source, LoadSource::Snapshot, "snapshot must be rewritten after corruption");
    assert_eq!(warnings.len(), 1);

    std::fs::remove_dir_all(&dir).ok();
}
