//! The Protocol Processor instruction set.
//!
//! A DLX-flavoured 32-bit RISC ISA extended with the MAGIC communication
//! instructions `switch` (receive a word from the Inbox) and `send` (emit a
//! word to the Outbox), the two instructions whose not-ready interfaces
//! stall the PP pipeline (paper Section 2). The PP supports no virtual
//! memory and no recoverable exceptions, so ALU instructions have no
//! control-logic effect at all — exactly the property behind the paper's
//! five instruction classes (Table 3.1).

use serde::{Deserialize, Serialize};

/// A register name `r0..r31`; `r0` reads as zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Set if less than (unsigned).
    Sltu,
    /// Logical shift left by the low 5 bits.
    Sll,
    /// Logical shift right by the low 5 bits.
    Srl,
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Register-register ALU operation: `rd = rs op rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// ALU with immediate: `rd = rs op imm` (imm zero-extended 16 bits).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// Immediate.
        imm: u16,
    },
    /// Load upper immediate: `rd = imm << 16`.
    Lui {
        /// Destination.
        rd: Reg,
        /// Immediate.
        imm: u16,
    },
    /// Load word: `rd = mem[rs + imm]` (word addressed).
    Lw {
        /// Destination.
        rd: Reg,
        /// Base register.
        rs: Reg,
        /// Word offset.
        imm: u16,
    },
    /// Store word: `mem[rs + imm] = rt`.
    Sw {
        /// Value register.
        rt: Reg,
        /// Base register.
        rs: Reg,
        /// Word offset.
        imm: u16,
    },
    /// Receive a word from the Inbox into `rd`; stalls while the Inbox is
    /// not ready.
    Switch {
        /// Destination.
        rd: Reg,
    },
    /// Send `rs` to the Outbox; stalls while the Outbox is not ready.
    Send {
        /// Source.
        rs: Reg,
    },
    /// No operation.
    Nop,
    /// Stop the processor.
    Halt,
}

/// The paper's five instruction classes (Table 3.1) — the distinguished
/// cases the control logic can tell apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum InstrClass {
    /// "Has no effect since there are no exceptions in the PP."
    Alu = 0,
    /// "Execution of a load can cause transitions in load/store FSMs."
    Ld = 1,
    /// "Execution of a store can cause transitions in load/store FSMs."
    Sd = 2,
    /// "A switch instruction executed while the Inbox is not ready causes a
    /// pipeline stall."
    Switch = 3,
    /// "A send instruction executed while the Outbox is not ready causes a
    /// pipeline stall."
    Send = 4,
}

impl InstrClass {
    /// All five classes, in the Table 3.1 order.
    pub const ALL: [InstrClass; 5] =
        [InstrClass::Alu, InstrClass::Ld, InstrClass::Sd, InstrClass::Switch, InstrClass::Send];

    /// The class of the given encoded value (inverse of `as u8`).
    pub fn from_code(code: u64) -> Option<InstrClass> {
        InstrClass::ALL.get(code as usize).copied()
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            InstrClass::Alu => "ALU",
            InstrClass::Ld => "LD",
            InstrClass::Sd => "SD",
            InstrClass::Switch => "SWITCH",
            InstrClass::Send => "SEND",
        }
    }

    /// The paper's description of the class's effect on control logic.
    pub fn control_effect(self) -> &'static str {
        match self {
            InstrClass::Alu => "has no effect since there are no exceptions in the PP",
            InstrClass::Ld => "execution of a load can cause transitions in load/store FSMs",
            InstrClass::Sd => "execution of a store can cause transitions in load/store FSMs",
            InstrClass::Switch => {
                "a switch instruction executed while the Inbox is not ready causes a pipeline stall"
            }
            InstrClass::Send => {
                "a send instruction executed while the Outbox is not ready causes a pipeline stall"
            }
        }
    }
}

impl Instr {
    /// Classifies the instruction per Table 3.1. Branches would join the
    /// ALU class (the paper: "branches only impact the control logic by
    /// causing instruction cache misses, so they are included in the ALU
    /// instruction class"); `Nop` and `Halt` are likewise control-inert.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Alu { .. }
            | Instr::AluImm { .. }
            | Instr::Lui { .. }
            | Instr::Nop
            | Instr::Halt => InstrClass::Alu,
            Instr::Lw { .. } => InstrClass::Ld,
            Instr::Sw { .. } => InstrClass::Sd,
            Instr::Switch { .. } => InstrClass::Switch,
            Instr::Send { .. } => InstrClass::Send,
        }
    }

    /// Whether the instruction uses the data-memory pipe (the structural
    /// resource the dual-issue pairing rules guard).
    pub fn is_mem_pipe(&self) -> bool {
        !matches!(self.class(), InstrClass::Alu)
    }

    /// The destination register, if any.
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Lw { rd, .. }
            | Instr::Switch { rd, .. } => Some(*rd).filter(|r| r.0 != 0),
            _ => None,
        }
    }

    /// The source registers.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Instr::Alu { rs, rt, .. } => vec![*rs, *rt],
            Instr::AluImm { rs, .. } | Instr::Lw { rs, .. } => vec![*rs],
            Instr::Sw { rt, rs, .. } => vec![*rt, *rs],
            Instr::Send { rs } => vec![*rs],
            _ => Vec::new(),
        }
    }
}

// ---- binary encoding ----

const OP_ALU: u32 = 0; // funct selects the AluOp
const OP_ADDI: u32 = 1;
const OP_ANDI: u32 = 2;
const OP_ORI: u32 = 3;
const OP_XORI: u32 = 4;
const OP_LUI: u32 = 5;
const OP_LW: u32 = 6;
const OP_SW: u32 = 7;
const OP_SWITCH: u32 = 8;
const OP_SEND: u32 = 9;
const OP_NOP: u32 = 10;
const OP_HALT: u32 = 11;
const OP_SLTIU: u32 = 12;

fn alu_funct(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Sltu => 5,
        AluOp::Sll => 6,
        AluOp::Srl => 7,
    }
}

fn funct_alu(f: u32) -> Option<AluOp> {
    Some(match f {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sltu,
        6 => AluOp::Sll,
        7 => AluOp::Srl,
        _ => return None,
    })
}

impl Instr {
    /// Encodes to a 32-bit instruction word.
    ///
    /// Layout: `[31:26] opcode, [25:21] rd/rt, [20:16] rs, [15:11] rt,
    /// [10:0]/[15:0] funct or immediate`.
    pub fn encode(&self) -> u32 {
        let r = |x: Reg| u32::from(x.0 & 31);
        match *self {
            Instr::Alu { op, rd, rs, rt } => {
                (OP_ALU << 26) | (r(rd) << 21) | (r(rs) << 16) | (r(rt) << 11) | alu_funct(op)
            }
            Instr::AluImm { op, rd, rs, imm } => {
                let opcode = match op {
                    AluOp::Add => OP_ADDI,
                    AluOp::And => OP_ANDI,
                    AluOp::Or => OP_ORI,
                    AluOp::Xor => OP_XORI,
                    AluOp::Sltu => OP_SLTIU,
                    // shifts by immediate use the register form with the
                    // shift amount in an immediate; encode as ADDI-like is
                    // ambiguous, so they round-trip through OP_ALU with rt
                    // as the amount — not reachable from this arm
                    AluOp::Sub | AluOp::Sll | AluOp::Srl => OP_ADDI,
                };
                (opcode << 26) | (r(rd) << 21) | (r(rs) << 16) | u32::from(imm)
            }
            Instr::Lui { rd, imm } => (OP_LUI << 26) | (r(rd) << 21) | u32::from(imm),
            Instr::Lw { rd, rs, imm } => {
                (OP_LW << 26) | (r(rd) << 21) | (r(rs) << 16) | u32::from(imm)
            }
            Instr::Sw { rt, rs, imm } => {
                (OP_SW << 26) | (r(rt) << 21) | (r(rs) << 16) | u32::from(imm)
            }
            Instr::Switch { rd } => (OP_SWITCH << 26) | (r(rd) << 21),
            Instr::Send { rs } => (OP_SEND << 26) | (r(rs) << 16),
            Instr::Nop => OP_NOP << 26,
            Instr::Halt => OP_HALT << 26,
        }
    }

    /// Decodes a 32-bit instruction word. Unknown opcodes decode to `None`.
    pub fn decode(word: u32) -> Option<Instr> {
        let opcode = word >> 26;
        let rd = Reg(((word >> 21) & 31) as u8);
        let rs = Reg(((word >> 16) & 31) as u8);
        let rt = Reg(((word >> 11) & 31) as u8);
        let imm = (word & 0xFFFF) as u16;
        Some(match opcode {
            OP_ALU => Instr::Alu { op: funct_alu(word & 0x7FF)?, rd, rs, rt },
            OP_ADDI => Instr::AluImm { op: AluOp::Add, rd, rs, imm },
            OP_ANDI => Instr::AluImm { op: AluOp::And, rd, rs, imm },
            OP_ORI => Instr::AluImm { op: AluOp::Or, rd, rs, imm },
            OP_XORI => Instr::AluImm { op: AluOp::Xor, rd, rs, imm },
            OP_SLTIU => Instr::AluImm { op: AluOp::Sltu, rd, rs, imm },
            OP_LUI => Instr::Lui { rd, imm },
            OP_LW => Instr::Lw { rd, rs, imm },
            OP_SW => Instr::Sw { rt: rd, rs, imm },
            OP_SWITCH => Instr::Switch { rd },
            OP_SEND => Instr::Send { rs },
            OP_NOP => Instr::Nop,
            OP_HALT => Instr::Halt,
            _ => return None,
        })
    }
}

/// Applies an ALU operation.
pub fn alu_apply(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sltu => u32::from(a < b),
        AluOp::Sll => a << (b & 31),
        AluOp::Srl => a >> (b & 31),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: Instr) {
        let w = i.encode();
        assert_eq!(Instr::decode(w), Some(i), "word {w:#010x}");
    }

    #[test]
    fn encode_decode_round_trips() {
        round_trip(Instr::Alu { op: AluOp::Add, rd: Reg(1), rs: Reg(2), rt: Reg(3) });
        round_trip(Instr::Alu { op: AluOp::Srl, rd: Reg(31), rs: Reg(30), rt: Reg(29) });
        round_trip(Instr::AluImm { op: AluOp::Add, rd: Reg(4), rs: Reg(5), imm: 0xBEEF });
        round_trip(Instr::AluImm { op: AluOp::And, rd: Reg(4), rs: Reg(5), imm: 7 });
        round_trip(Instr::AluImm { op: AluOp::Or, rd: Reg(4), rs: Reg(0), imm: 1 });
        round_trip(Instr::AluImm { op: AluOp::Xor, rd: Reg(9), rs: Reg(9), imm: 0xFFFF });
        round_trip(Instr::AluImm { op: AluOp::Sltu, rd: Reg(2), rs: Reg(3), imm: 10 });
        round_trip(Instr::Lui { rd: Reg(7), imm: 0x1234 });
        round_trip(Instr::Lw { rd: Reg(8), rs: Reg(9), imm: 42 });
        round_trip(Instr::Sw { rt: Reg(10), rs: Reg(11), imm: 99 });
        round_trip(Instr::Switch { rd: Reg(12) });
        round_trip(Instr::Send { rs: Reg(13) });
        round_trip(Instr::Nop);
        round_trip(Instr::Halt);
    }

    #[test]
    fn unknown_opcode_decodes_to_none() {
        assert_eq!(Instr::decode(63 << 26), None);
        assert_eq!(Instr::decode((OP_ALU << 26) | 0x3FF), None, "bad funct");
    }

    #[test]
    fn classes_match_table_3_1() {
        assert_eq!(Instr::Nop.class(), InstrClass::Alu);
        assert_eq!(
            Instr::Alu { op: AluOp::Add, rd: Reg(1), rs: Reg(1), rt: Reg(1) }.class(),
            InstrClass::Alu
        );
        assert_eq!(Instr::Lw { rd: Reg(1), rs: Reg(2), imm: 0 }.class(), InstrClass::Ld);
        assert_eq!(Instr::Sw { rt: Reg(1), rs: Reg(2), imm: 0 }.class(), InstrClass::Sd);
        assert_eq!(Instr::Switch { rd: Reg(1) }.class(), InstrClass::Switch);
        assert_eq!(Instr::Send { rs: Reg(1) }.class(), InstrClass::Send);
    }

    #[test]
    fn class_codes_round_trip() {
        for c in InstrClass::ALL {
            assert_eq!(InstrClass::from_code(c as u64), Some(c));
        }
        assert_eq!(InstrClass::from_code(5), None);
    }

    #[test]
    fn dest_filters_r0() {
        assert_eq!(Instr::AluImm { op: AluOp::Add, rd: Reg(0), rs: Reg(1), imm: 1 }.dest(), None);
        assert_eq!(Instr::Switch { rd: Reg(3) }.dest(), Some(Reg(3)));
        assert_eq!(Instr::Send { rs: Reg(3) }.dest(), None);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu_apply(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu_apply(AluOp::Sub, 0, 1), u32::MAX);
        assert_eq!(alu_apply(AluOp::Sltu, 1, 2), 1);
        assert_eq!(alu_apply(AluOp::Sltu, 2, 1), 0);
        assert_eq!(alu_apply(AluOp::Sll, 1, 33), 2, "shift amount masked");
        assert_eq!(alu_apply(AluOp::Srl, 4, 2), 1);
    }

    #[test]
    fn mem_pipe_classification() {
        assert!(Instr::Lw { rd: Reg(1), rs: Reg(1), imm: 0 }.is_mem_pipe());
        assert!(Instr::Send { rs: Reg(1) }.is_mem_pipe());
        assert!(!Instr::Nop.is_mem_pipe());
    }
}
