//! The campaign server binary.
//!
//! ```text
//! archval-served --unix /tmp/archval.sock --cache-dir .archval/cache \
//!                --jobs-dir .archval/jobs --workers 2
//! archval-served --tcp 127.0.0.1:7317 --cache-mb 512 --threads 4
//! ```
//!
//! Exactly one of `--unix <path>` / `--tcp <addr>` selects the listener.
//! `--cache-dir` enables snapshot persistence, `--jobs-dir` the durable
//! job store (crash-resume), `--cache-mb` caps resident graph bytes,
//! `--workers` sizes the campaign pool, `--threads`/`--lanes` size
//! cold-start enumeration. The process exits after a client sends
//! `{"cmd":"shutdown"}` and in-flight jobs drain.

use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;

use archval_serve::{listen_tcp, listen_unix, CacheConfig, Server, ServerConfig};

struct Args {
    unix: Option<PathBuf>,
    tcp: Option<String>,
    workers: usize,
    cache_dir: Option<PathBuf>,
    jobs_dir: Option<PathBuf>,
    cache_mb: usize,
    threads: usize,
    lanes: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: archval-served (--unix <path> | --tcp <addr>) [--workers N] \
         [--cache-dir DIR] [--jobs-dir DIR] [--cache-mb N] [--threads N] [--lanes N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        unix: None,
        tcp: None,
        workers: 2,
        cache_dir: None,
        jobs_dir: None,
        cache_mb: 1024,
        threads: 1,
        lanes: archval::DEFAULT_LANES,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--unix" => out.unix = Some(PathBuf::from(value())),
            "--tcp" => out.tcp = Some(value()),
            "--workers" => out.workers = parse_num(&value()),
            "--cache-dir" => out.cache_dir = Some(PathBuf::from(value())),
            "--jobs-dir" => out.jobs_dir = Some(PathBuf::from(value())),
            "--cache-mb" => out.cache_mb = parse_num(&value()),
            "--threads" => out.threads = parse_num(&value()),
            "--lanes" => out.lanes = parse_num(&value()),
            _ => usage(),
        }
    }
    if out.unix.is_some() == out.tcp.is_some() {
        usage();
    }
    out
}

fn parse_num(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => usage(),
    }
}

fn main() {
    let args = parse_args();
    let config = ServerConfig {
        workers: args.workers,
        cache: CacheConfig {
            snapshot_dir: args.cache_dir,
            max_bytes: args.cache_mb << 20,
            enum_threads: args.threads,
            batch_lanes: args.lanes,
        },
        jobs_dir: args.jobs_dir,
    };
    let server = match Server::start(config) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("archval-served: startup failed: {e}");
            exit(1);
        }
    };
    if server.recovered() > 0 {
        eprintln!("archval-served: resuming {} in-flight job(s)", server.recovered());
    }
    let result = match (&args.unix, &args.tcp) {
        (Some(path), None) => {
            eprintln!("archval-served: listening on unix socket {}", path.display());
            listen_unix(&server, path)
        }
        (None, Some(addr)) => {
            eprintln!("archval-served: listening on tcp {addr}");
            listen_tcp(&server, addr.as_str())
        }
        _ => unreachable!("parse_args enforces exactly one listener"),
    };
    if let Err(e) = result {
        eprintln!("archval-served: listener failed: {e}");
        exit(1);
    }
    eprintln!("archval-served: drained, exiting");
}
