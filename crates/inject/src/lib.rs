//! Fault-injection campaigns over FSM models and compiled step programs.
//!
//! The paper's evaluation (Section 4) hinges on one question: do
//! transition tours actually expose seeded design errors? This crate turns
//! that question into a measurement. It derives **mutants** from a
//! reference design — model-level faults ([`archval_fsm::mutate`]:
//! stuck-at state bits, inverted conditions and guards, collapsed choice
//! inputs, off-by-one case boundaries) and bytecode-level faults
//! ([`archval_exec::mutate`]: opcode and operand flips in the compiled
//! [`StepProgram`](archval_exec::StepProgram)) — then runs a **campaign**:
//! each mutant is re-enumerated under a budget, and the paper's three
//! stimulus strategies (transition tours, coverage-guided fuzz, uniform
//! random) are replayed in lockstep against reference and mutant,
//! producing a per-`(mutant, strategy)` [`Verdict`] and a kill-rate
//! matrix.
//!
//! Robustness is the design center: every mutant run executes under a
//! [`RunBudget`] with `catch_unwind` panic isolation, so a mutant that
//! explodes the state space, wedges, or panics degrades to a typed verdict
//! (`StateExplosion` / `Timeout` / `Panicked`) instead of aborting the
//! campaign — and progress checkpoints to disk as JSONL, so an interrupted
//! campaign resumes where it left off and produces a byte-identical
//! report.
//!
//! # Example
//!
//! ```
//! use archval_fsm::builder::ModelBuilder;
//! use archval_inject::{run_campaign, CampaignConfig, Strategy};
//!
//! let mut b = ModelBuilder::new("counter");
//! let en = b.choice("enable", 2);
//! let count = b.state_var("count", 4, 0);
//! let cur = b.var_expr(count);
//! let bumped = b.add(cur, b.constant(1));
//! let wrapped = b.modulo(bumped, b.constant(4));
//! let next = b.ternary(b.choice_expr(en), wrapped, cur);
//! b.set_next(count, next);
//! let model = b.build().unwrap();
//!
//! let config = CampaignConfig { mutant_limit: 8, include_chaos: false, ..Default::default() };
//! let report = run_campaign(&model, &config)?;
//! assert_eq!(report.mutants.len(), 8);
//! assert!(report.complete);
//! let tours = report.kill_rate(Strategy::Tours).unwrap();
//! assert!(tours.rate() > 0.0, "tours must kill some counter mutants");
//! # Ok::<(), archval_inject::Error>(())
//! ```

pub mod budget;
pub mod campaign;
pub mod chaos;
pub mod guard;
pub mod mutant;
pub mod stimulus;
pub mod verdict;

pub use budget::{CancelToken, RunBudget};
pub use campaign::{
    run_campaign, run_campaign_streaming, run_campaign_with, run_campaign_with_pool,
    CampaignConfig, CampaignReport, KillRate, MutantOutcome, StrategyVerdict,
};
pub use guard::run_isolated;
pub use mutant::{diff_mutant_pool, generate_mutants, ChaosKind, MutantSpec};
pub use stimulus::{build_suites, StimulusSuite, Strategy, SuiteConfig};
pub use verdict::{EnumOutcome, Verdict};

/// Fault-injection failure: anything that stops a whole campaign (never a
/// single mutant — misbehaving mutants become [`Verdict`]s).
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Enumerating or simulating the *reference* design failed.
    Fsm(archval_fsm::Error),
    /// The reference fuzz run building the fuzz stimulus suite failed.
    Fuzz(archval_fuzz::Error),
    /// Reading or writing the campaign checkpoint failed.
    Io(std::io::Error),
    /// The checkpoint on disk does not belong to this campaign (mutant
    /// labels or count mismatch) or is malformed.
    Checkpoint(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Fsm(e) => write!(f, "reference enumeration failed: {e}"),
            Error::Fuzz(e) => write!(f, "reference fuzz run failed: {e}"),
            Error::Io(e) => write!(f, "campaign checkpoint I/O failed: {e}"),
            Error::Checkpoint(m) => write!(f, "campaign checkpoint invalid: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Fsm(e) => Some(e),
            Error::Fuzz(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Checkpoint(_) => None,
        }
    }
}

impl From<archval_fsm::Error> for Error {
    fn from(e: archval_fsm::Error) -> Self {
        Error::Fsm(e)
    }
}

impl From<archval_fuzz::Error> for Error {
    fn from(e: archval_fuzz::Error) -> Self {
        Error::Fuzz(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
