//! Textual emission of the paper's Verilog force/release command files.
//!
//! "For Verilog, this is done by writing a set of 'force/release' commands
//! to toggle the values of the interface signals. When the simulation is
//! run, these commands are compiled with the model and cause the interface
//! signals to transition at the times specified by the transition tour."
//! (Section 3.3.)

use std::fmt::Write as _;

use archval_pp::asm::disassemble;

use crate::mapping::Stimulus;

/// Emits a Verilog testbench fragment that forces the interface signals of
/// `pp_control` to follow the stimulus cycle by cycle, with the concrete
/// program listed alongside.
pub fn emit_force_file(stim: &Stimulus, dut: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "// generated transition-tour vector file");
    let _ = writeln!(s, "// {} cycles, {} instructions", stim.cycles.len(), stim.program.len());
    s.push_str("// program image (word address: instruction):\n");
    for (i, instr) in stim.program.iter().enumerate() {
        let _ = writeln!(s, "//   {i:5}: {}", disassemble(instr));
    }
    s.push_str("initial begin\n");
    let mut prev: Option<Vec<(String, u64)>> = None;
    for plan in &stim.cycles {
        let mut lines: Vec<(String, u64)> = vec![
            ("iclass".into(), plan.ctrl.iclass),
            ("ihit".into(), u64::from(plan.ctrl.ihit)),
            ("dhit".into(), u64::from(plan.ctrl.dhit)),
            ("victim_dirty".into(), u64::from(plan.ctrl.victim_dirty)),
            ("same_line".into(), u64::from(plan.ctrl.same_line)),
            ("inbox_ready".into(), u64::from(plan.ctrl.inbox_ready)),
            ("outbox_ready".into(), u64::from(plan.ctrl.outbox_ready)),
            ("mem_ready".into(), u64::from(plan.ctrl.mem_ready)),
        ];
        if stim.scale.dual_comm_slot {
            lines.insert(1, ("iclass2".into(), plan.ctrl.iclass2));
        }
        for (sig, val) in &lines {
            // only emit a force when the value changes, like the paper's
            // toggling command streams
            let changed = prev
                .as_ref()
                .and_then(|p| p.iter().find(|(s2, _)| s2 == sig))
                .is_none_or(|(_, v2)| v2 != val);
            if changed {
                let _ = writeln!(s, "  force {dut}.{sig} = {val};");
            }
        }
        prev = Some(lines);
        s.push_str("  @(posedge clk);\n");
    }
    s.push_str("end\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::trace_to_stimulus;
    use archval_fsm::{enumerate, EnumConfig};
    use archval_pp::{testkit, PpScale};
    use archval_tour::{generate_tours, TourConfig};

    #[test]
    fn force_file_covers_every_cycle() {
        let (scale, model) = testkit::micro_model();
        let enumd = enumerate(&model, &EnumConfig::default()).unwrap();
        let tours = generate_tours(&enumd.graph, &TourConfig::default());
        let stim = trace_to_stimulus(&scale, &model, &tours, &tours.traces()[0], 0);
        let text = emit_force_file(&stim, "tb.dut");
        assert_eq!(
            text.matches("@(posedge clk);").count(),
            stim.cycles.len(),
            "one clock advance per cycle"
        );
        assert!(text.contains("force tb.dut.ihit"));
        assert!(text.contains("initial begin"));
        // the program listing is embedded
        assert!(text.matches("//   ").count() >= stim.program.len());
    }

    /// Golden test: the emitted text for a hand-built two-cycle stimulus,
    /// byte for byte. Any formatting drift (ordering, change-only
    /// emission, clock advances) breaks replayability of persisted
    /// vector files and must show up here.
    #[test]
    fn force_file_golden() {
        use crate::mapping::{CyclePlan, Stimulus};
        use archval_pp::{CtrlIn, CtrlState};

        let quiet = CtrlIn::quiet();
        let miss = CtrlIn { ihit: false, mem_ready: false, ..quiet };
        let plan = |ctrl| CyclePlan { ctrl, expect_after: CtrlState::reset(), fetched: None };
        let stim = Stimulus {
            scale: PpScale::micro(),
            program: Vec::new(),
            inbox: Vec::new(),
            cycles: vec![plan(quiet), plan(miss), plan(quiet)],
        };
        let expected = "\
// generated transition-tour vector file
// 3 cycles, 0 instructions
// program image (word address: instruction):
initial begin
  force dut.iclass = 0;
  force dut.ihit = 1;
  force dut.dhit = 1;
  force dut.victim_dirty = 0;
  force dut.same_line = 0;
  force dut.inbox_ready = 1;
  force dut.outbox_ready = 1;
  force dut.mem_ready = 1;
  @(posedge clk);
  force dut.ihit = 0;
  force dut.mem_ready = 0;
  @(posedge clk);
  force dut.ihit = 1;
  force dut.mem_ready = 1;
  @(posedge clk);
end
";
        assert_eq!(emit_force_file(&stim, "dut"), expected);
    }
}
