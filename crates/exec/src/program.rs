//! The compiled form of a model: a flat register-machine program.
//!
//! A [`StepProgram`] is produced by [`compile`](crate::lower::compile)
//! from an [`archval_fsm::Model`] and executed by
//! [`CompiledEngine`](crate::engine::CompiledEngine). The program is a
//! single topologically-ordered instruction vector split at
//! [`prefix_len`](StepProgram::prefix_len):
//!
//! * the **state-only prefix** reads `state` and computes every
//!   infallible expression that does not depend on a choice input. The
//!   enumerator sweeps all choice combinations against one dequeued
//!   state, so this part runs once per state, not once per transition;
//! * the **choice-dependent suffix** reads `choices`, finishes the
//!   computation (including any lazily-evaluated fallible regions) and
//!   writes the successor into `out` via the `Store*` instructions.
//!
//! Registers are plain `u64`s. Register indices below
//! [`const_regs`](StepProgram::const_regs) hold constants preloaded at
//! engine construction and are never written by instructions.

use archval_fsm::Model;

/// Instruction opcodes.
///
/// Binary value opcodes read registers `a` and `b` and write `dst`;
/// `Mod` comes in two flavours so the interpreter only pays for the
/// zero-divisor check where the compiler could not prove it away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// `r[dst] = state[a]` (prefix only).
    LoadVar,
    /// `r[dst] = choices[a]` (suffix only).
    LoadChoice,
    /// `r[dst] = r[a]`.
    Move,
    /// `r[dst] = (r[a] == 0) as u64`.
    Not,
    /// `r[dst] = !r[a]`.
    BitNot,
    /// `r[dst] = (r[a] != 0 && r[b] != 0) as u64`.
    And,
    /// `r[dst] = (r[a] != 0 || r[b] != 0) as u64`.
    Or,
    /// `r[dst] = r[a] & r[b]`.
    BitAnd,
    /// `r[dst] = r[a] | r[b]`.
    BitOr,
    /// `r[dst] = r[a] ^ r[b]`.
    BitXor,
    /// `r[dst] = r[a].wrapping_add(r[b])`.
    Add,
    /// `r[dst] = r[a].wrapping_sub(r[b])`.
    Sub,
    /// `r[dst] = r[a].wrapping_mul(r[b])`.
    Mul,
    /// `r[dst] = r[a] % r[b]`, divisor statically proven nonzero.
    ModUnchecked,
    /// `r[dst] = r[a] % r[b]`, failing with `DivisionByZero` on `r[b] == 0`.
    ModChecked,
    /// `r[dst] = (r[a] == r[b]) as u64`.
    Eq,
    /// `r[dst] = (r[a] != r[b]) as u64`.
    Ne,
    /// `r[dst] = (r[a] < r[b]) as u64`.
    Lt,
    /// `r[dst] = (r[a] <= r[b]) as u64`.
    Le,
    /// `r[dst] = (r[a] > r[b]) as u64`.
    Gt,
    /// `r[dst] = (r[a] >= r[b]) as u64`.
    Ge,
    /// `r[dst] = r[a] << r[b].min(63)`.
    Shl,
    /// `r[dst] = r[a] >> r[b].min(63)`.
    Shr,
    /// `r[dst] = if r[a] != 0 { r[b] } else { r[c] }` — the branch-free
    /// lowering of safe `Ternary`/`Select` nodes.
    CondMove,
    /// Unconditional jump to instruction index `a`.
    Jump,
    /// Jump to instruction index `b` when `r[a] == 0`.
    JumpIfZero,
    /// `out[dst] = r[a] & var_masks[dst]` (power-of-two domain).
    StoreMask,
    /// `out[dst] = r[a] % var_sizes[dst]` (general domain truncation).
    StoreMod,
}

/// One fixed-width instruction. Operand meaning depends on [`Op`]; unused
/// operands are zero.
#[derive(Debug, Clone, Copy)]
pub struct Instr {
    /// Opcode.
    pub op: Op,
    /// Destination register, or output-variable index for stores.
    pub dst: u32,
    /// First operand (register, input index or jump target).
    pub a: u32,
    /// Second operand (register or jump target).
    pub b: u32,
    /// Third operand (register; `CondMove` only).
    pub c: u32,
}

/// Compile-time metrics, reported by the repro binaries alongside the
/// paper tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Expression-arena nodes in the source model.
    pub arena_nodes: usize,
    /// Nodes folded to compile-time constants.
    pub folded: usize,
    /// Nodes aliased to an identical node by value numbering (CSE on top
    /// of the arena's structural hash-consing).
    pub cse_aliased: usize,
    /// Live non-constant nodes surviving dead-code elimination.
    pub live_nodes: usize,
    /// Total instructions emitted.
    pub instructions: usize,
    /// Instructions in the state-only prefix.
    pub prefix_instructions: usize,
    /// Registers in the register file (constants included).
    pub registers: usize,
    /// Registers preloaded with constants.
    pub const_registers: usize,
}

/// A compiled model: flat instructions plus the tables the interpreter
/// needs (initial register file, per-variable domain truncation).
#[derive(Debug, Clone)]
pub struct StepProgram {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) prefix_len: usize,
    pub(crate) init_regs: Vec<u64>,
    pub(crate) const_regs: usize,
    pub(crate) var_sizes: Vec<u64>,
    pub(crate) var_masks: Vec<u64>,
    pub(crate) n_choices: usize,
    pub(crate) stats: CompileStats,
    pub(crate) dep_sets: archval_fsm::DepSets,
}

impl StepProgram {
    /// The full instruction stream (prefix then suffix).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of leading instructions that only depend on the state.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Size of the register file.
    pub fn register_count(&self) -> usize {
        self.init_regs.len()
    }

    /// Number of leading registers preloaded with constants.
    pub fn const_regs(&self) -> usize {
        self.const_regs
    }

    /// Number of state variables the program steps.
    pub fn var_count(&self) -> usize {
        self.var_sizes.len()
    }

    /// Number of choice inputs the program reads.
    pub fn choice_count(&self) -> usize {
        self.n_choices
    }

    /// Compile-time metrics.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Conservative per-variable / per-definition read sets, computed once
    /// during lowering. This is what maps a mutated definition to the
    /// state variables whose next-state functions can observe it — the
    /// dependence side of delta enumeration
    /// ([`archval_fsm::delta::enumerate_delta_with`]).
    pub fn dep_sets(&self) -> &archval_fsm::DepSets {
        &self.dep_sets
    }

    /// Checks that this program was compiled for a model of the same
    /// shape (variable count/domains and choice count) as `model`.
    pub fn fits(&self, model: &Model) -> bool {
        self.n_choices == model.choices().len()
            && self.var_sizes.len() == model.vars().len()
            && self.var_sizes.iter().zip(model.vars()).all(|(&s, v)| s == v.size)
    }
}
