//! Typed errors for graph construction and snapshot I/O.

use std::fmt;
use std::io;

/// Errors from building a CSR graph.
///
/// The CSR arrays index states and edges with `u32`, so a graph with more
/// than `u32::MAX` of either cannot be represented; the builder reports
/// that as a typed error instead of silently truncating.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The state count exceeds `u32::MAX`.
    TooManyStates {
        /// The offending number of states.
        states: usize,
    },
    /// The edge count exceeds `u32::MAX` (detected while building row
    /// offsets, before any index wraps).
    TooManyEdges {
        /// The number of edges accumulated when the overflow was detected.
        edges: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TooManyStates { states } => {
                write!(f, "state count {states} exceeds the u32 CSR index range")
            }
            GraphError::TooManyEdges { edges } => {
                write!(f, "edge count {edges} exceeds the u32 CSR index range")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Errors from reading or writing a graph snapshot.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the file contents.
        computed: u64,
    },
    /// The file ended before a declared chunk or field was complete.
    Truncated,
    /// A required chunk is missing.
    MissingChunk {
        /// Four-byte chunk tag, e.g. `"CSRG"`.
        tag: &'static str,
    },
    /// A chunk decoded to structurally invalid data.
    Corrupt(&'static str),
    /// The snapshot was produced from a different model than the one it is
    /// being loaded for.
    ModelMismatch {
        /// Fingerprint stored in the snapshot.
        stored: u64,
        /// Fingerprint of the model supplied at load time.
        expected: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a graph snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} is not supported (this build reads up to {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::MissingChunk { tag } => {
                write!(f, "snapshot is missing required chunk {tag:?}")
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot chunk is corrupt: {what}"),
            SnapshotError::ModelMismatch { stored, expected } => write!(
                f,
                "snapshot was enumerated from a different model \
                 (fingerprint {stored:#018x}, expected {expected:#018x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = GraphError::TooManyStates { states: 5_000_000_000 };
        assert!(e.to_string().contains("5000000000"));
        let e = SnapshotError::ModelMismatch { stored: 1, expected: 2 };
        assert!(e.to_string().contains("different model"));
        let e = SnapshotError::MissingChunk { tag: "CSRG" };
        assert!(e.to_string().contains("CSRG"));
    }
}
