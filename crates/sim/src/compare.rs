//! Architectural comparison between the RTL implementation and the
//! executable specification.
//!
//! "The ability of this technique to detect bugs in the design relies on
//! ... the bugs manifest[ing] as data value differences between the
//! implementation and the specification" (Section 4). The comparison is at
//! instruction retirement: register writes, memory writes and Outbox
//! sends, in program order.

use serde::{Deserialize, Serialize};

use archval_pp::ref_sim::{RefSim, Retire};
use archval_pp::BugSet;
use archval_stimgen::mapping::Stimulus;
use archval_stimgen::replay::{replay, ReplayError};

/// A detected behavioural difference.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mismatch {
    /// Retirement sequence number at which behaviour diverged.
    pub seq: u64,
    /// What the specification did.
    pub expected: Option<Retire>,
    /// What the implementation did.
    pub actual: Option<Retire>,
}

/// The outcome of comparing one stimulus run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// First mismatch, if any — `Some` means a bug was exposed.
    pub mismatch: Option<Mismatch>,
    /// Instructions the implementation retired.
    pub retired: usize,
    /// Cycles the implementation ran.
    pub cycles: u64,
}

impl ComparisonReport {
    /// Whether the run exposed a behavioural difference.
    pub fn detected(&self) -> bool {
        self.mismatch.is_some()
    }
}

/// Replays `stim` on the RTL with `bugs` injected and compares retirement
/// logs against the specification.
///
/// # Errors
///
/// Propagates [`ReplayError`] when a *bug-free* design's control diverges
/// from the tour (a modelling discrepancy, not a design bug).
pub fn compare_stimulus(stim: &Stimulus, bugs: BugSet) -> Result<ComparisonReport, ReplayError> {
    let outcome = replay(stim, bugs)?;
    let rtl = outcome.rtl;

    let mut spec = RefSim::new(&stim.program, stim.inbox.clone());
    spec.run(rtl.retired().len());

    let mut mismatch = None;
    for (i, actual) in rtl.retired().iter().enumerate() {
        match spec.retired().get(i) {
            Some(expected) if expected == actual => {}
            other => {
                mismatch = Some(Mismatch {
                    seq: i as u64,
                    expected: other.copied(),
                    actual: Some(*actual),
                });
                break;
            }
        }
    }
    Ok(ComparisonReport { mismatch, retired: rtl.retired().len(), cycles: rtl.cycles() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use archval_fsm::{enumerate, EnumConfig};
    use archval_pp::testkit;
    use archval_stimgen::mapping::trace_to_stimulus;
    use archval_tour::{generate_tours, TourConfig};

    #[test]
    fn bug_free_design_matches_specification_on_all_tours() {
        let (scale, model) = testkit::micro_model();
        let enumd = enumerate(&model, &EnumConfig::default()).unwrap();
        let tours = generate_tours(&enumd.graph, &TourConfig::default());
        for (i, trace) in tours.traces().iter().enumerate() {
            let stim = trace_to_stimulus(&scale, &model, &tours, trace, i as u64);
            let report = compare_stimulus(&stim, BugSet::none()).unwrap();
            assert!(!report.detected(), "false positive on trace {i}: {:?}", report.mismatch);
        }
    }
}
