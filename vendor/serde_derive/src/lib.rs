//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stand-in's JSON-direct traits, parsing the item
//! with the bare `proc_macro` API (`syn`/`quote` are not available
//! offline). Supported shapes — the ones this workspace uses:
//!
//! * structs with named fields            → `{"field":...}` objects
//! * tuple structs, 1 field (newtypes)    → the inner value
//! * tuple structs, n fields              → `[...]` arrays
//! * unit structs                         → `null`
//! * enums: unit variants                 → `"Variant"`
//! * enums: struct variants               → `{"Variant":{"field":...}}`
//! * enums: tuple variants                → `{"Variant":[...]}` (1-field: value)
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kw = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive stand-in does not support generics on `{name}`"));
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, shape })
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            // #[...] or #![...]
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Punct(q)) if q.as_char() == '!') {
                    *pos += 1;
                }
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                // pub(crate) / pub(in ...)
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Consumes type tokens until a top-level comma, tracking `<...>` depth so
/// commas inside generic arguments do not terminate the field.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected ':' after `{name}`, found {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        // the top-level comma (if not at end)
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // optional explicit discriminant: `= expr` up to the comma
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            while pos < tokens.len()
                && !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                pos += 1;
            }
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// --------------------------------------------------------------- codegen

fn ser_field(expr: &str, out: &mut String) {
    out.push_str(&format!("::serde::Serialize::serialize_json({expr}, out);\n"));
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => {
            body.push_str("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
                ser_field(&format!("&self.{f}"), &mut body);
            }
            body.push_str("out.push('}');\n");
        }
        Shape::TupleStruct(1) => {
            ser_field("&self.0", &mut body);
        }
        Shape::TupleStruct(n) => {
            body.push_str("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                ser_field(&format!("&self.{i}"), &mut body);
            }
            body.push_str("out.push(']');\n");
        }
        Shape::UnitStruct => {
            body.push_str("out.push_str(\"null\");\n");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!(
                            "{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!("{name}::{vn}({}) => {{\n", binds.join(", ")));
                        body.push_str(&format!("out.push_str(\"{{\\\"{vn}\\\":\");\n"));
                        if *n == 1 {
                            ser_field("__f0", &mut body);
                        } else {
                            body.push_str("out.push('[');\n");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                ser_field(b, &mut body);
                            }
                            body.push_str("out.push(']');\n");
                        }
                        body.push_str("out.push('}');\n}\n");
                    }
                    VariantKind::Named(fields) => {
                        body.push_str(&format!("{name}::{vn} {{ {} }} => {{\n", fields.join(", ")));
                        body.push_str(&format!("out.push_str(\"{{\\\"{vn}\\\":{{\");\n"));
                        for (i, f) in fields.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');\n");
                            }
                            body.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
                            ser_field(f, &mut body);
                        }
                        body.push_str("out.push_str(\"}}\");\n}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

/// Generates statements that parse `{"field":...}` object contents into
/// `Option` locals named `__v_<field>` (order-insensitive, unknown keys
/// skipped), leaving the parser past the closing brace.
fn de_named_fields(fields: &[String], body: &mut String) {
    for f in fields {
        body.push_str(&format!("let mut __v_{f} = ::core::option::Option::None;\n"));
    }
    body.push_str("p.expect('{')?;\n");
    body.push_str("if !p.try_char('}') {\nloop {\n");
    body.push_str("let __key = p.parse_string()?;\np.expect(':')?;\n");
    body.push_str("match __key.as_str() {\n");
    for f in fields {
        body.push_str(&format!(
            "\"{f}\" => __v_{f} = ::core::option::Option::Some(::serde::Deserialize::deserialize_json(p)?),\n"
        ));
    }
    body.push_str("_ => p.skip_value()?,\n}\n");
    body.push_str("if p.try_char(',') { continue; }\np.expect('}')?;\nbreak;\n}\n}\n");
}

fn de_named_build(path: &str, fields: &[String]) -> String {
    let mut s = format!("{path} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: match __v_{f} {{ ::core::option::Option::Some(v) => v, \
             ::core::option::Option::None => return ::core::result::Result::Err(p.error(\"missing field {f}\")) }},\n"
        ));
    }
    s.push('}');
    s
}

fn de_tuple_values(n: usize, body: &mut String) -> Vec<String> {
    let names: Vec<String> = (0..n).map(|i| format!("__t{i}")).collect();
    if n == 1 {
        body.push_str("let __t0 = ::serde::Deserialize::deserialize_json(p)?;\n");
    } else {
        body.push_str("p.expect('[')?;\n");
        for (i, t) in names.iter().enumerate() {
            if i > 0 {
                body.push_str("p.expect(',')?;\n");
            }
            body.push_str(&format!("let {t} = ::serde::Deserialize::deserialize_json(p)?;\n"));
        }
        body.push_str("p.expect(']')?;\n");
    }
    names
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => {
            de_named_fields(fields, &mut body);
            body.push_str(&format!(
                "::core::result::Result::Ok({})\n",
                de_named_build(name, fields)
            ));
        }
        Shape::TupleStruct(n) => {
            let names = de_tuple_values(*n, &mut body);
            body.push_str(&format!("::core::result::Result::Ok({name}({}))\n", names.join(", ")));
        }
        Shape::UnitStruct => {
            body.push_str(
                "if !p.try_null() { return ::core::result::Result::Err(p.error(\"expected null\")); }\n",
            );
            body.push_str(&format!("::core::result::Result::Ok({name})\n"));
        }
        Shape::Enum(variants) => {
            let has_payload = variants.iter().any(|v| !matches!(v.kind, VariantKind::Unit));
            body.push_str("match p.peek_char() {\n");
            body.push_str("::core::option::Option::Some('\"') => {\n");
            body.push_str("let __name = p.parse_string()?;\nmatch __name.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    body.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
            }
            body.push_str(
                "_ => ::core::result::Result::Err(p.error(\"unknown enum variant\")),\n}\n}\n",
            );
            if has_payload {
                body.push_str("::core::option::Option::Some('{') => {\n");
                body.push_str(
                    "p.expect('{')?;\nlet __name = p.parse_string()?;\np.expect(':')?;\n",
                );
                body.push_str("let __value = match __name.as_str() {\n");
                for v in variants {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {}
                        VariantKind::Tuple(n) => {
                            body.push_str(&format!("\"{vn}\" => {{\n"));
                            let names = de_tuple_values(*n, &mut body);
                            body.push_str(&format!("{name}::{vn}({})\n}}\n", names.join(", ")));
                        }
                        VariantKind::Named(fields) => {
                            body.push_str(&format!("\"{vn}\" => {{\n"));
                            de_named_fields(fields, &mut body);
                            body.push_str(&de_named_build(&format!("{name}::{vn}"), fields));
                            body.push_str("\n}\n");
                        }
                    }
                }
                body.push_str(
                    "_ => return ::core::result::Result::Err(p.error(\"unknown enum variant\")),\n};\n",
                );
                body.push_str("p.expect('}')?;\n::core::result::Result::Ok(__value)\n}\n");
            }
            body.push_str(
                "_ => ::core::result::Result::Err(p.error(\"expected enum value\")),\n}\n",
            );
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_json(p: &mut ::serde::de::Parser<'_>) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
