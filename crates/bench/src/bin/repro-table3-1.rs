//! Regenerates Table 3.1: the five PP instruction classes and their effect
//! on control logic, derived from the implemented ISA.

use archval_pp::isa::{AluOp, Instr, InstrClass, Reg};

fn main() {
    println!("== Table 3.1 — PP Instruction Classes ==\n");
    println!("{:<10} Effect on Control Logic", "Class");
    for c in InstrClass::ALL {
        println!("{:<10} {}", c.name(), c.control_effect());
    }

    // verify the classifier over a representative instruction inventory
    let inventory: Vec<(Instr, InstrClass)> = vec![
        (Instr::Alu { op: AluOp::Add, rd: Reg(1), rs: Reg(2), rt: Reg(3) }, InstrClass::Alu),
        (Instr::AluImm { op: AluOp::Xor, rd: Reg(1), rs: Reg(2), imm: 9 }, InstrClass::Alu),
        (Instr::Lui { rd: Reg(1), imm: 1 }, InstrClass::Alu),
        (Instr::Nop, InstrClass::Alu),
        (Instr::Halt, InstrClass::Alu),
        (Instr::Lw { rd: Reg(1), rs: Reg(2), imm: 0 }, InstrClass::Ld),
        (Instr::Sw { rt: Reg(1), rs: Reg(2), imm: 0 }, InstrClass::Sd),
        (Instr::Switch { rd: Reg(1) }, InstrClass::Switch),
        (Instr::Send { rs: Reg(1) }, InstrClass::Send),
    ];
    let mut counts = [0usize; 5];
    for (i, want) in &inventory {
        assert_eq!(i.class(), *want);
        counts[*want as usize] += 1;
    }
    println!(
        "\nclassifier verified over {} representative instructions \
         (ALU-class absorbs nop/halt/lui as the paper's branches do).",
        inventory.len()
    );
    let _ = counts;
}
