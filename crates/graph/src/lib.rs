//! The shared labelled state graph of the validation pipeline.
//!
//! The paper's whole methodology (Sections 3.2–3.3) hangs off one
//! artifact: the state graph that enumeration produces and that tours,
//! coverage tracking and fuzzing all read. This crate owns the single
//! representation of that artifact:
//!
//! * [`GraphBuilder`] — append-only construction with hashed per-state
//!   arc deduplication (no quadratic out-list scans), used by both the
//!   sequential and the frontier-parallel enumerator;
//! * [`StateGraph`] — the immutable compressed-sparse-row result: flat
//!   `row`/`dst`/`label` arrays, dense [`EdgeIx`] edge indices, cheap
//!   `Clone` (the arrays are shared behind an [`Arc`](std::sync::Arc));
//! * [`snapshot`] — a versioned, checksummed binary container so an
//!   enumerated graph can be saved once and reused across runs.
//!
//! The crate is deliberately free of any model or simulator types: it
//! knows nothing about how states are packed or what edge labels mean,
//! only that states are dense `u32` ids (reset is 0) and labels are
//! `u64` codes.

pub mod builder;
pub mod csr;
pub mod error;
pub mod snapshot;

pub use builder::{GraphBuilder, GraphStats};
pub use csr::{Edge, EdgeIx, EdgeLabel, EdgePolicy, OutEdges, StateGraph, StateId};
pub use error::{GraphError, SnapshotError};
