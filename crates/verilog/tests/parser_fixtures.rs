//! Parser and translator fixtures: realistic module shapes and the error
//! surface of the subset.

use archval_fsm::{enumerate, EnumConfig};
use archval_verilog::{parse, translate, Interp, VerilogError};

#[test]
fn gray_code_counter() {
    let src = "module gray(clk, reset, en, g);\n input clk, reset;\n \
               input en; // archval: abstract\n output [2:0] g;\n reg [2:0] bin;\n \
               wire [2:0] g;\n assign g = bin ^ (bin >> 1);\n \
               always @(posedge clk) begin\n if (reset) bin <= 3'd0;\n \
               else if (en) bin <= bin + 3'd1;\n end\nendmodule";
    let model = translate(&parse(src).unwrap(), "gray").unwrap();
    let r = enumerate(&model, &EnumConfig::default()).unwrap();
    assert_eq!(r.graph.state_count(), 8);
    // gray property via the interpreter: successive codes differ in 1 bit
    let d = parse(src).unwrap();
    let mut i = Interp::new(&d, "gray").unwrap();
    i.set_input("reset", 1).unwrap();
    i.posedge().unwrap();
    i.set_input("reset", 0).unwrap();
    i.set_input("en", 1).unwrap();
    let mut prev = i.get("g").unwrap();
    for _ in 0..16 {
        i.posedge().unwrap();
        let cur = i.get("g").unwrap();
        assert_eq!((prev ^ cur).count_ones(), 1, "gray step {prev:03b}->{cur:03b}");
        prev = cur;
    }
}

#[test]
fn one_hot_ring_with_parameter_ignored() {
    let src = "module ring(clk, reset, q);\n parameter WIDTH = 4;\n input clk, reset;\n \
               output [3:0] q;\n reg [3:0] q;\n always @(posedge clk) begin\n \
               if (reset) q <= 4'b0001;\n else q <= {q[2:0], q[3]};\n end\nendmodule";
    let model = translate(&parse(src).unwrap(), "ring").unwrap();
    let r = enumerate(&model, &EnumConfig::default()).unwrap();
    assert_eq!(r.graph.state_count(), 4, "one-hot rotation has 4 states");
    assert_eq!(model.reset_state(), vec![1]);
}

#[test]
fn saturating_counter() {
    let src = "module sat(clk, reset, up, q);\n input clk, reset;\n \
               input up; // archval: abstract\n output [1:0] q;\n reg [1:0] q;\n \
               always @(posedge clk) begin\n if (reset) q <= 2'd0;\n \
               else if (up && (q < 2'd3)) q <= q + 2'd1;\n \
               else if (!up && (q > 2'd0)) q <= q - 2'd1;\n end\nendmodule";
    let model = translate(&parse(src).unwrap(), "sat").unwrap();
    let r = enumerate(&model, &EnumConfig::default()).unwrap();
    assert_eq!(r.graph.state_count(), 4);
    // 2 arcs per state except saturation self-loops collapse
    assert!(r.graph.edge_count() >= 7);
}

#[test]
fn two_clock_domains_rejected() {
    let src = "module bad(clk, clk2, reset, q);\n input clk, clk2, reset;\n output q;\n \
               reg q, p;\n always @(posedge clk) q <= ~q;\n \
               always @(posedge clk2) p <= ~p;\nendmodule";
    assert!(matches!(
        translate(&parse(src).unwrap(), "bad"),
        Err(VerilogError::Unsupported { .. })
    ));
}

#[test]
fn register_in_two_clocked_blocks_rejected() {
    let src = "module bad(clk, reset, q);\n input clk, reset;\n output q;\n reg q;\n \
               always @(posedge clk) q <= 1'b0;\n always @(posedge clk) q <= 1'b1;\nendmodule";
    assert!(matches!(
        translate(&parse(src).unwrap(), "bad"),
        Err(VerilogError::Unsupported { .. })
    ));
}

#[test]
fn wide_signals_rejected() {
    let src = "module bad(clk, reset, q);\n input clk, reset;\n output q;\n reg q;\n \
               reg [63:0] big;\n always @(posedge clk) begin q <= big[0]; big <= big + 1; \
               end\nendmodule";
    assert!(parse(src).is_err() || translate(&parse(src).unwrap(), "bad").is_err());
}

#[test]
fn off_region_hides_unsupported_constructs() {
    let src = "module ok(clk, reset, q);\n input clk, reset;\n output q;\n reg q;\n \
               // archval: off\n initial begin q = 0; end\n // archval: on\n \
               always @(posedge clk) q <= ~q;\nendmodule";
    assert!(translate(&parse(src).unwrap(), "ok").is_ok());
}

#[test]
fn interpreter_and_translation_agree_on_shift_edge_cases() {
    // shifting by a variable amount, including amounts >= width
    let src = "module sh(clk, reset, amt, q);\n input clk, reset;\n \
               input [2:0] amt; // archval: abstract\n output [3:0] q;\n reg [3:0] q;\n \
               always @(posedge clk) begin\n if (reset) q <= 4'b1111;\n \
               else q <= q >> amt;\n end\nendmodule";
    let design = parse(src).unwrap();
    let model = translate(&design, "sh").unwrap();
    let mut interp = Interp::new(&design, "sh").unwrap();
    interp.set_input("reset", 1).unwrap();
    interp.posedge().unwrap();
    interp.set_input("reset", 0).unwrap();
    let mut sim = archval_fsm::SyncSim::new(&model);
    for amt in [0u64, 1, 3, 7, 2, 0, 5] {
        interp.set_input("amt", amt).unwrap();
        interp.posedge().unwrap();
        sim.step(&[amt]).unwrap();
        assert_eq!(interp.get("q"), sim.var("q"), "amt={amt}");
    }
}
