//! The register-machine interpreter executing a [`StepProgram`].

use archval_fsm::engine::{EngineFactory, StepEngine};
use archval_fsm::Error;

use crate::program::{Op, StepProgram};

/// A [`StepEngine`] executing a compiled [`StepProgram`].
///
/// The engine owns only the mutable register file; the program is shared,
/// so spawning one engine per worker thread is cheap and workers never
/// contend. `begin_state` runs the state-only prefix once per dequeued
/// state; `step_choices` runs the choice-dependent suffix per permutation.
#[derive(Debug)]
pub struct CompiledEngine<'p> {
    program: &'p StepProgram,
    regs: Vec<u64>,
}

impl<'p> CompiledEngine<'p> {
    /// Creates an engine over `program` with a fresh register file.
    pub fn new(program: &'p StepProgram) -> Self {
        CompiledEngine { program, regs: program.init_regs.clone() }
    }

    /// The program this engine executes.
    pub fn program(&self) -> &'p StepProgram {
        self.program
    }

    fn exec(
        &mut self,
        start: usize,
        end: usize,
        state: &[u64],
        choices: &[u64],
        out: &mut [u64],
    ) -> Result<(), Error> {
        let p = self.program;
        let regs = &mut self.regs;
        let mut pc = start;
        while pc < end {
            let i = p.instrs[pc];
            let (a, b) = (i.a as usize, i.b as usize);
            match i.op {
                Op::LoadVar => regs[i.dst as usize] = state[a],
                Op::LoadChoice => regs[i.dst as usize] = choices[a],
                Op::Move => regs[i.dst as usize] = regs[a],
                Op::Not => regs[i.dst as usize] = u64::from(regs[a] == 0),
                Op::BitNot => regs[i.dst as usize] = !regs[a],
                Op::And => regs[i.dst as usize] = u64::from(regs[a] != 0 && regs[b] != 0),
                Op::Or => regs[i.dst as usize] = u64::from(regs[a] != 0 || regs[b] != 0),
                Op::BitAnd => regs[i.dst as usize] = regs[a] & regs[b],
                Op::BitOr => regs[i.dst as usize] = regs[a] | regs[b],
                Op::BitXor => regs[i.dst as usize] = regs[a] ^ regs[b],
                Op::Add => regs[i.dst as usize] = regs[a].wrapping_add(regs[b]),
                Op::Sub => regs[i.dst as usize] = regs[a].wrapping_sub(regs[b]),
                Op::Mul => regs[i.dst as usize] = regs[a].wrapping_mul(regs[b]),
                Op::ModUnchecked => regs[i.dst as usize] = regs[a] % regs[b],
                Op::ModChecked => {
                    let d = regs[b];
                    if d == 0 {
                        return Err(Error::DivisionByZero);
                    }
                    regs[i.dst as usize] = regs[a] % d;
                }
                Op::Eq => regs[i.dst as usize] = u64::from(regs[a] == regs[b]),
                Op::Ne => regs[i.dst as usize] = u64::from(regs[a] != regs[b]),
                Op::Lt => regs[i.dst as usize] = u64::from(regs[a] < regs[b]),
                Op::Le => regs[i.dst as usize] = u64::from(regs[a] <= regs[b]),
                Op::Gt => regs[i.dst as usize] = u64::from(regs[a] > regs[b]),
                Op::Ge => regs[i.dst as usize] = u64::from(regs[a] >= regs[b]),
                Op::Shl => regs[i.dst as usize] = regs[a] << regs[b].min(63),
                Op::Shr => regs[i.dst as usize] = regs[a] >> regs[b].min(63),
                Op::CondMove => {
                    regs[i.dst as usize] = if regs[a] != 0 { regs[b] } else { regs[i.c as usize] }
                }
                Op::Jump => {
                    pc = a;
                    continue;
                }
                Op::JumpIfZero => {
                    if regs[a] == 0 {
                        pc = b;
                        continue;
                    }
                }
                Op::StoreMask => out[i.dst as usize] = regs[a] & p.var_masks[i.dst as usize],
                Op::StoreMod => out[i.dst as usize] = regs[a] % p.var_sizes[i.dst as usize],
            }
            pc += 1;
        }
        Ok(())
    }
}

impl StepEngine for CompiledEngine<'_> {
    fn begin_state(&mut self, state: &[u64]) -> Result<(), Error> {
        debug_assert_eq!(state.len(), self.program.var_sizes.len(), "state width mismatch");
        // the prefix is branch-free and infallible by construction
        self.exec(0, self.program.prefix_len, state, &[], &mut [])
    }

    fn step_choices(&mut self, choices: &[u64], out: &mut [u64]) -> Result<(), Error> {
        debug_assert_eq!(choices.len(), self.program.n_choices, "choice width mismatch");
        debug_assert_eq!(out.len(), self.program.var_sizes.len(), "output width mismatch");
        let end = self.program.instrs.len();
        self.exec(self.program.prefix_len, end, &[], choices, out)
    }
}

/// Spawns one [`CompiledEngine`] per caller over the shared program —
/// what the parallel enumerator and fuzz workers use.
impl EngineFactory for StepProgram {
    fn spawn(&self) -> Box<dyn StepEngine + '_> {
        Box::new(CompiledEngine::new(self))
    }
}
