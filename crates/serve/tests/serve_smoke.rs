//! End-to-end smoke of the `archval-served` binary over a Unix socket:
//! the protocol round trip, cache warm-up across requests, the
//! crash-resume guarantee (SIGKILL mid-inject-campaign, restart, final
//! report byte-identical to an uninterrupted run), and the graceful
//! SIGTERM drain under load (running campaign parks at a checkpoint,
//! queued jobs survive in the job store, the restarted server finishes
//! everything to the same bytes).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use archval_serve::client::Client;
use archval_serve::{line_is_event, BudgetSpec, Cmd, ModelRef, Request};

const SERVER_BIN: &str = env!("CARGO_BIN_EXE_archval-served");

struct Dirs {
    root: PathBuf,
    sock: PathBuf,
    cache: PathBuf,
    jobs: PathBuf,
}

fn dirs(tag: &str) -> Dirs {
    let root = std::env::temp_dir().join(format!("archval-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    Dirs {
        sock: root.join("served.sock"),
        cache: root.join("cache"),
        jobs: root.join("jobs"),
        root,
    }
}

fn start_server(d: &Dirs) -> Child {
    start_server_with(d, &[])
}

fn start_server_with(d: &Dirs, extra: &[&str]) -> Child {
    let child = Command::new(SERVER_BIN)
        .args(["--unix"])
        .arg(&d.sock)
        .args(["--cache-dir"])
        .arg(&d.cache)
        .args(["--jobs-dir"])
        .arg(&d.jobs)
        .args(["--workers", "1"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn archval-served");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !d.sock.exists() {
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    child
}

fn shutdown_server(d: &Dirs, mut child: Child) {
    if let Ok(mut c) = Client::connect_unix(&d.sock) {
        let _ = c.send(&Request::new(Cmd::Shutdown));
        let _ = c.recv_line();
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return;
            }
        }
    }
}

fn micro_request(cmd: Cmd, id: &str) -> Request {
    let mut r = Request::new(cmd);
    r.id = id.into();
    r.model = Some(ModelRef::Named("pp-micro".into()));
    r
}

fn inject_request(id: &str) -> Request {
    let mut r = micro_request(Cmd::Inject, id);
    r.mutants = Some(12);
    r.chaos = false;
    r.threads = Some(1);
    r.budget = Some(BudgetSpec { deadline_ms: Some(30_000), ..Default::default() });
    r
}

fn wait_for_file(path: &Path, what: &str) -> Vec<u8> {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if let Ok(bytes) = std::fs::read(path) {
            if !bytes.is_empty() {
                return bytes;
            }
        }
        assert!(Instant::now() < deadline, "{what} never appeared at {}", path.display());
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim_matches('"'))
}

#[test]
fn protocol_round_trip_over_unix_socket() {
    let d = dirs("roundtrip");
    let child = start_server(&d);
    let mut c = Client::connect_unix(&d.sock).unwrap();

    c.send(&Request::new(Cmd::Ping)).unwrap();
    let pong = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&pong, "pong"), "{pong}");

    // cold enumerate: graph comes from a fresh enumeration
    c.send(&micro_request(Cmd::Enumerate, "e1")).unwrap();
    let lines = c.recv_until("done").unwrap();
    let ready = lines.iter().find(|l| line_is_event(l, "graph_ready")).unwrap();
    assert_eq!(field(ready, "source"), Some("enumerated"), "{ready}");
    let report = lines.iter().find(|l| line_is_event(l, "report")).unwrap();
    assert!(report.contains("\"states\":"), "{report}");

    // same model again under a new id: served straight from the cache
    c.send(&micro_request(Cmd::Enumerate, "e2")).unwrap();
    let lines = c.recv_until("done").unwrap();
    let ready = lines.iter().find(|l| line_is_event(l, "graph_ready")).unwrap();
    assert_eq!(field(ready, "source"), Some("cache"), "{ready}");

    // tours over the cached graph cover every arc
    c.send(&micro_request(Cmd::Tour, "t1")).unwrap();
    let lines = c.recv_until("done").unwrap();
    let report = lines.iter().find(|l| line_is_event(l, "report")).unwrap();
    assert!(report.contains("\"full_coverage\":true"), "{report}");

    // fuzz streams coverage-curve points before its report
    let mut fz = micro_request(Cmd::Fuzz, "f1");
    fz.cycles = Some(2_000);
    fz.seed = 7;
    c.send(&fz).unwrap();
    let lines = c.recv_until("done").unwrap();
    assert!(
        lines.iter().any(|l| line_is_event(l, "coverage")),
        "fuzz must stream coverage points: {lines:?}"
    );

    // resubmitting a completed id replays the stored report verbatim
    c.send(&micro_request(Cmd::Enumerate, "e1")).unwrap();
    let lines = c.recv_until("done").unwrap();
    let replay = lines.iter().find(|l| line_is_event(l, "report")).unwrap();
    let stored = std::fs::read_to_string(d.jobs.join("e1.report.json")).unwrap();
    assert!(replay.ends_with(&format!(",\"report\":{}}}", stored.trim_end())), "{replay}");

    // malformed ids and lines produce typed errors, not disconnects
    let mut bad = micro_request(Cmd::Enumerate, "../escape");
    c.send(&bad).unwrap();
    let err = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&err, "error"), "{err}");
    bad.id = String::new();
    c.send(&bad).unwrap();
    let err = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&err, "error"), "{err}");
    c.send_line("{not json").unwrap();
    let err = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&err, "error"), "{err}");

    c.send(&Request::new(Cmd::Stats)).unwrap();
    let stats = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&stats, "stats"), "{stats}");
    assert!(stats.contains("\"enumerations\":1"), "one cold enumeration total: {stats}");

    shutdown_server(&d, child);
    assert!(!d.sock.exists(), "socket file cleaned up on shutdown");
    std::fs::remove_dir_all(&d.root).ok();
}

#[test]
fn spec_requests_and_fingerprint_fast_path() {
    let d = dirs("fingerprint");
    let child = start_server(&d);
    let mut c = Client::connect_unix(&d.sock).unwrap();

    // a fingerprint nothing has loaded yet is a typed error, not a crash
    let mut r = Request::new(Cmd::Tour);
    r.id = "fp-cold".into();
    r.fingerprint = Some(0xdead_beef);
    c.send(&r).unwrap();
    let err = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&err, "error"), "{err}");
    assert_eq!(field(&err, "kind"), Some("unknown_fingerprint"), "{err}");

    // a canonical design spec resolves through the same registry as the
    // presets — this member is outside the legacy family
    let mut r = Request::new(Cmd::Enumerate);
    r.id = "spec-1".into();
    r.model = Some(ModelRef::Named("beats=2,ways=2,spill=2".into()));
    c.send(&r).unwrap();
    let lines = c.recv_until("done").unwrap();
    let accepted = lines.iter().find(|l| line_is_event(l, "accepted")).unwrap();
    let fp = field(accepted, "fingerprint").unwrap().to_string();
    let report = lines.iter().find(|l| line_is_event(l, "report")).unwrap();
    assert!(report.contains("\"states\":"), "{report}");

    // the returned fingerprint now addresses the resident graph directly
    let mut r = Request::new(Cmd::Tour);
    r.id = "fp-warm".into();
    r.fingerprint = Some(u64::from_str_radix(&fp, 16).unwrap());
    c.send(&r).unwrap();
    let lines = c.recv_until("done").unwrap();
    let accepted = lines.iter().find(|l| line_is_event(l, "accepted")).unwrap();
    assert_eq!(field(accepted, "cached"), Some("true"), "{accepted}");
    let ready = lines.iter().find(|l| line_is_event(l, "graph_ready")).unwrap();
    assert_eq!(field(ready, "source"), Some("cache"), "{ready}");
    let report = lines.iter().find(|l| line_is_event(l, "report")).unwrap();
    assert!(report.contains("\"full_coverage\":true"), "{report}");

    // an unparsable model name reports the registry's vocabulary
    let mut r = Request::new(Cmd::Enumerate);
    r.id = "bad-spec".into();
    r.model = Some(ModelRef::Named("beats=3".into()));
    c.send(&r).unwrap();
    let err = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&err, "error"), "{err}");
    assert_eq!(field(&err, "kind"), Some("failed"), "{err}");

    shutdown_server(&d, child);
    std::fs::remove_dir_all(&d.root).ok();
}

#[test]
fn delta_enumerate_against_resident_reference() {
    let d = dirs("delta");
    let child = start_server(&d);
    let mut c = Client::connect_unix(&d.sock).unwrap();

    // a delta reference nothing has loaded yet is a typed error
    let mut r = micro_request(Cmd::Enumerate, "d-cold");
    r.delta = Some(0xdead_beef);
    c.send(&r).unwrap();
    let lines = c.recv_until("error").unwrap();
    let err = lines.iter().find(|l| line_is_event(l, "error")).unwrap();
    assert_eq!(field(err, "kind"), Some("unknown_fingerprint"), "{err}");

    // make the reference graph resident
    c.send(&micro_request(Cmd::Enumerate, "d-ref")).unwrap();
    let lines = c.recv_until("done").unwrap();
    let accepted = lines.iter().find(|l| line_is_event(l, "accepted")).unwrap();
    let fp = u64::from_str_radix(field(accepted, "fingerprint").unwrap(), 16).unwrap();
    let ref_report = lines.iter().find(|l| line_is_event(l, "report")).unwrap().clone();

    // incremental enumeration against the resident reference: spliced,
    // and byte-identical in every reported figure
    let mut r = micro_request(Cmd::Enumerate, "d-warm");
    r.delta = Some(fp);
    c.send(&r).unwrap();
    let lines = c.recv_until("done").unwrap();
    let ready = lines.iter().find(|l| line_is_event(l, "graph_ready")).unwrap();
    assert_eq!(field(ready, "source"), Some("delta"), "{ready}");
    let report = lines.iter().find(|l| line_is_event(l, "report")).unwrap();
    for key in ["states", "edges", "transitions_evaluated", "max_depth"] {
        assert_eq!(field(report, key), field(&ref_report, key), "{key}: {report}");
    }

    // an incompatible model falls back to a full sweep inside the delta
    // enumerator — still served, still correct
    let mut r = Request::new(Cmd::Enumerate);
    r.id = "d-other".into();
    r.model = Some(ModelRef::Named("beats=2,ways=2,spill=2".into()));
    r.delta = Some(fp);
    c.send(&r).unwrap();
    let lines = c.recv_until("done").unwrap();
    let ready = lines.iter().find(|l| line_is_event(l, "graph_ready")).unwrap();
    assert_eq!(field(ready, "source"), Some("delta"), "{ready}");
    let report = lines.iter().find(|l| line_is_event(l, "report")).unwrap();
    assert!(report.contains("\"states\":"), "{report}");

    shutdown_server(&d, child);
    std::fs::remove_dir_all(&d.root).ok();
}

#[test]
fn sigkill_mid_campaign_resumes_to_byte_identical_report() {
    let req = inject_request("camp");

    // baseline: the same campaign, uninterrupted
    let base = dirs("baseline");
    let child = start_server(&base);
    let mut c = Client::connect_unix(&base.sock).unwrap();
    c.send(&req).unwrap();
    let lines = c.recv_until("done").unwrap();
    assert_eq!(lines.iter().filter(|l| line_is_event(l, "verdict")).count(), 12);
    shutdown_server(&base, child);
    let expected = wait_for_file(&base.jobs.join("camp.report.json"), "baseline report");

    // interrupted: SIGKILL after the second streamed verdict
    let d = dirs("killed");
    let mut child = start_server(&d);
    let mut c = Client::connect_unix(&d.sock).unwrap();
    c.send(&req).unwrap();
    c.recv_until("verdict").unwrap();
    c.recv_until("verdict").unwrap();
    child.kill().unwrap();
    child.wait().unwrap();

    let checkpoint = d.jobs.join("camp.checkpoint.jsonl");
    let lines = std::fs::read_to_string(&checkpoint).unwrap_or_default();
    assert!(lines.lines().count() >= 2, "checkpoint must hold the streamed mutants at kill time");

    // restart on the same job store: the campaign resumes unattended
    let child = start_server(&d);
    let resumed = wait_for_file(&d.jobs.join("camp.report.json"), "resumed report");
    assert_eq!(
        String::from_utf8_lossy(&resumed),
        String::from_utf8_lossy(&expected),
        "resumed report must be byte-identical to the uninterrupted run"
    );

    // resubmitting the finished id replays the identical report
    let mut c = Client::connect_unix(&d.sock).unwrap();
    c.send(&req).unwrap();
    let lines = c.recv_until("done").unwrap();
    let replay = lines.iter().find(|l| line_is_event(l, "report")).unwrap();
    let stored = String::from_utf8_lossy(&resumed);
    assert!(replay.ends_with(&format!(",\"report\":{}}}", stored.trim_end())), "{replay}");

    shutdown_server(&d, child);
    std::fs::remove_dir_all(&d.root).ok();
    std::fs::remove_dir_all(&base.root).ok();
}

#[test]
fn sigterm_drain_under_load_parks_and_resumes_byte_identically() {
    let req = inject_request("drain-camp");

    // baseline: the same campaign, uninterrupted
    let base = dirs("drain-baseline");
    let child = start_server(&base);
    let mut c = Client::connect_unix(&base.sock).unwrap();
    c.send(&req).unwrap();
    c.recv_until("done").unwrap();
    shutdown_server(&base, child);
    let expected = wait_for_file(&base.jobs.join("drain-camp.report.json"), "baseline report");

    // load a single-worker server: a running inject campaign plus a
    // backlog of queued enumerates, then SIGTERM mid-campaign
    let d = dirs("drain");
    let mut child = start_server_with(&d, &["--drain-secs", "60"]);
    let mut c = Client::connect_unix(&d.sock).unwrap();
    c.send(&req).unwrap();
    c.recv_until("verdict").unwrap();
    let queued: Vec<String> = (0..3).map(|i| format!("drain-e{i}")).collect();
    for id in &queued {
        c.send(&micro_request(Cmd::Enumerate, id)).unwrap();
    }
    // every queued job must be admitted (request file durable) before
    // the drain starts — that is the set the server promises to finish
    for id in &queued {
        wait_for_file(&d.jobs.join(format!("{id}.request.json")), "queued request file");
    }
    c.recv_until("verdict").unwrap();

    let term = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");

    // graceful drain: the campaign parks at its next checkpoint and the
    // process exits 0 well inside the drain deadline
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not drain within the deadline");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "drain must exit cleanly, got {status:?}");
    assert!(
        !d.jobs.join("drain-camp.report.json").exists(),
        "the campaign was parked, not finished, at drain time"
    );

    // restart on the same job store: the parked campaign and every
    // queued enumerate resume unattended
    let child = start_server(&d);
    let resumed = wait_for_file(&d.jobs.join("drain-camp.report.json"), "resumed report");
    assert_eq!(
        String::from_utf8_lossy(&resumed),
        String::from_utf8_lossy(&expected),
        "drained campaign must resume to a byte-identical report"
    );
    for id in &queued {
        wait_for_file(&d.jobs.join(format!("{id}.report.json")), "queued job report");
    }

    shutdown_server(&d, child);
    std::fs::remove_dir_all(&d.root).ok();
    std::fs::remove_dir_all(&base.root).ok();
}
