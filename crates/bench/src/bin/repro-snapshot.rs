//! Snapshot round-trip smoke check: enumerates the PP control model,
//! generates transition tours, saves the enumeration to a snapshot file,
//! loads it back, regenerates the tours from the loaded graph, and
//! asserts the two paths agree bit-for-bit — same graph, same traces,
//! same arc coverage. Exits non-zero on any mismatch.
//!
//! `--snapshot <path>` overrides where the snapshot file is written
//! (default: `archval-snapshot-check.avgs` in `ARCHVAL_BENCH_DIR` or the
//! current directory). `--engine <compiled|tree>` selects the step
//! engine used for the enumeration (identical results either way).

use archval::Engine;
use archval_bench::{engine_from_args, scale_from_args, snapshot_from_args, BenchError};
use archval_exec::StepProgram;
use archval_fsm::{enumerate_with, load_enum_result, save_enum_result, EngineFactory, EnumConfig};
use archval_pp::pp_control_model;
use archval_sim::baseline::tour_coverage_run;
use archval_tour::{generate_tours, TourConfig};

fn main() {
    archval_bench::run("repro-snapshot", body);
}

fn body() -> Result<(), BenchError> {
    let scale = scale_from_args();
    let engine = engine_from_args();
    let path = snapshot_from_args().unwrap_or_else(|| {
        let dir = std::env::var("ARCHVAL_BENCH_DIR").unwrap_or_else(|_| ".".into());
        std::path::Path::new(&dir).join("archval-snapshot-check.avgs")
    });

    eprintln!("enumerating at {scale:?} with the {engine} engine ...");
    let model = pp_control_model(&scale)?;
    let program = match engine {
        Engine::Compiled | Engine::Batched => Some(StepProgram::compile(&model)),
        Engine::Tree => None,
    };
    let factory: &dyn EngineFactory = match &program {
        Some(p) => p,
        None => &model,
    };
    let lanes = if engine == Engine::Batched { archval::DEFAULT_LANES } else { 1 };
    let fresh = enumerate_with(
        &model,
        &EnumConfig { batch_lanes: lanes, ..EnumConfig::default() },
        factory,
    )?;
    let fresh_tours = generate_tours(&fresh.graph, &TourConfig::default());
    let fresh_cov = tour_coverage_run(&fresh, &fresh_tours);

    save_enum_result(&path, &model, &fresh)?;
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    eprintln!("saved {} ({size} bytes)", path.display());

    let loaded = load_enum_result(&path, &model)?;
    if loaded.graph != fresh.graph {
        return Err(BenchError::Invalid("loaded graph differs from the in-memory graph".into()));
    }

    let loaded_tours = generate_tours(&loaded.graph, &TourConfig::default());
    if loaded_tours.traces() != fresh_tours.traces() {
        return Err(BenchError::Invalid(
            "tours generated from the snapshot differ from the in-memory tours".into(),
        ));
    }
    let loaded_cov = tour_coverage_run(&loaded, &loaded_tours);
    if (loaded_cov.arcs_covered, loaded_cov.arcs_total, loaded_cov.cycles)
        != (fresh_cov.arcs_covered, fresh_cov.arcs_total, fresh_cov.cycles)
    {
        return Err(BenchError::Invalid(
            "arc coverage through the snapshot differs from the in-memory path".into(),
        ));
    }
    if fresh_cov.arcs_covered != fresh_cov.arcs_total {
        return Err(BenchError::Invalid("tours must cover every arc".into()));
    }

    println!(
        "snapshot round-trip OK at {scale:?}: {} states, {} edges, {} traces, {}/{} arcs \
         covered through both paths",
        fresh.stats.states,
        fresh.stats.edges,
        fresh_tours.traces().len(),
        loaded_cov.arcs_covered,
        loaded_cov.arcs_total
    );
    Ok(())
}
