//! Lexer for the stylized Verilog subset.
//!
//! `// archval: ...` comments are preserved as [`Tok::Directive`] tokens
//! (they carry designer annotations); all other comments are skipped.

use crate::error::VerilogError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An unsized decimal number.
    Number(u64),
    /// A sized literal such as `4'b0101`: `(width, value)`.
    Sized(u32, u64),
    /// An `// archval: ...` directive body (text after the colon).
    Directive(String),
    /// Punctuation or operator.
    Punct(&'static str),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

const PUNCTS: &[&str] = &[
    // longest first so maximal munch works
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+", "-", "*", "/",
    "%", "&", "|", "^", "~", "!", "<", ">", "=", "(", ")", "[", "]", "{", "}", ",", ";", ":", "@",
    "?", ".", "#",
];

/// Tokenizes Verilog source.
///
/// # Errors
///
/// Returns [`VerilogError::Lex`] on malformed literals or characters
/// outside the subset.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, VerilogError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // comments
        if c == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            let end = src[i..].find('\n').map(|p| i + p).unwrap_or(n);
            let text = &src[i + 2..end];
            let trimmed = text.trim_start();
            if let Some(body) = trimmed.strip_prefix("archval:") {
                out.push(SpannedTok { tok: Tok::Directive(body.trim().to_owned()), line });
            }
            i = end;
            continue;
        }
        if c == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            let rest = &src[i + 2..];
            match rest.find("*/") {
                Some(p) => {
                    line += rest[..p].bytes().filter(|&b| b == b'\n').count() as u32;
                    i += 2 + p + 2;
                }
                None => {
                    return Err(VerilogError::Lex {
                        line,
                        msg: "unterminated block comment".into(),
                    })
                }
            }
            continue;
        }
        // identifiers and keywords
        if c.is_ascii_alphabetic() || c == b'_' || c == b'\\' {
            let start = if c == b'\\' { i + 1 } else { i };
            let mut j = start;
            while j < n
                && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'$')
            {
                j += 1;
            }
            if j == start {
                return Err(VerilogError::Lex { line, msg: "empty escaped identifier".into() });
            }
            out.push(SpannedTok { tok: Tok::Ident(src[start..j].to_owned()), line });
            i = j;
            continue;
        }
        // numbers: sized (4'b0101, 'hFF) or plain decimal
        if c.is_ascii_digit() || c == b'\'' {
            let mut j = i;
            let mut width_digits = String::new();
            while j < n && bytes[j].is_ascii_digit() {
                width_digits.push(bytes[j] as char);
                j += 1;
            }
            if j < n && bytes[j] == b'\'' {
                // sized literal
                j += 1;
                if j >= n {
                    return Err(VerilogError::Lex { line, msg: "truncated sized literal".into() });
                }
                let base = bytes[j].to_ascii_lowercase();
                j += 1;
                let radix = match base {
                    b'b' => 2,
                    b'o' => 8,
                    b'd' => 10,
                    b'h' => 16,
                    _ => {
                        return Err(VerilogError::Lex {
                            line,
                            msg: format!("unknown literal base `{}`", base as char),
                        })
                    }
                };
                let mut digits = String::new();
                while j < n
                    && (bytes[j].is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'x'
                        || bytes[j] == b'z')
                {
                    if bytes[j] != b'_' {
                        digits.push(bytes[j] as char);
                    }
                    j += 1;
                }
                if digits.contains(['x', 'X', 'z', 'Z']) {
                    return Err(VerilogError::Lex {
                        line,
                        msg: "x/z literal values are outside the synthesizable subset".into(),
                    });
                }
                let value = u64::from_str_radix(&digits, radix).map_err(|_| VerilogError::Lex {
                    line,
                    msg: format!("bad digits `{digits}` for base {radix}"),
                })?;
                let width: u32 = if width_digits.is_empty() {
                    32
                } else {
                    width_digits
                        .parse()
                        .map_err(|_| VerilogError::Lex { line, msg: "bad literal width".into() })?
                };
                if width == 0 || width > 64 {
                    return Err(VerilogError::Lex {
                        line,
                        msg: format!("literal width {width} not in 1..=64"),
                    });
                }
                let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
                out.push(SpannedTok { tok: Tok::Sized(width, value & mask), line });
                i = j;
                continue;
            }
            // plain decimal
            let value: u64 = width_digits
                .parse()
                .map_err(|_| VerilogError::Lex { line, msg: "bad decimal literal".into() })?;
            out.push(SpannedTok { tok: Tok::Number(value), line });
            i = j;
            continue;
        }
        // punctuation, maximal munch
        let rest = &src[i..];
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                out.push(SpannedTok { tok: Tok::Punct(p), line });
                i += p.len();
            }
            None => {
                return Err(VerilogError::Lex {
                    line,
                    msg: format!("unexpected character `{}`", c as char),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn identifiers_and_punct() {
        assert_eq!(
            toks("module m ( clk );"),
            vec![
                Tok::Ident("module".into()),
                Tok::Ident("m".into()),
                Tok::Punct("("),
                Tok::Ident("clk".into()),
                Tok::Punct(")"),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn sized_literals() {
        assert_eq!(toks("4'b0101"), vec![Tok::Sized(4, 5)]);
        assert_eq!(toks("8'hFF"), vec![Tok::Sized(8, 255)]);
        assert_eq!(toks("8'hff"), vec![Tok::Sized(8, 255)]);
        assert_eq!(toks("12'o777"), vec![Tok::Sized(12, 0o777)]);
        assert_eq!(toks("16'd1_000"), vec![Tok::Sized(16, 1000)]);
        assert_eq!(toks("'h10"), vec![Tok::Sized(32, 16)]);
    }

    #[test]
    fn sized_literal_truncates_to_width() {
        assert_eq!(toks("2'd7"), vec![Tok::Sized(2, 3)]);
    }

    #[test]
    fn plain_decimal() {
        assert_eq!(toks("42"), vec![Tok::Number(42)]);
    }

    #[test]
    fn xz_rejected() {
        assert!(lex("4'b10xz").is_err());
    }

    #[test]
    fn comments_skipped_directives_kept() {
        let got = toks("a // plain comment\nb // archval: abstract classes=5\nc /* block */ d");
        assert_eq!(
            got,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Directive("abstract classes=5".into()),
                Tok::Ident("c".into()),
                Tok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = ts.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn block_comment_counts_lines() {
        let ts = lex("/* one\ntwo */ x").unwrap();
        assert_eq!(ts[0].line, 2);
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            toks("a<=b <= a<b a==b a!=b a&&b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("<="),
                Tok::Ident("a".into()),
                Tok::Punct("<"),
                Tok::Ident("b".into()),
                Tok::Ident("a".into()),
                Tok::Punct("=="),
                Tok::Ident("b".into()),
                Tok::Ident("a".into()),
                Tok::Punct("!="),
                Tok::Ident("b".into()),
                Tok::Ident("a".into()),
                Tok::Punct("&&"),
                Tok::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(matches!(lex("/* oops"), Err(VerilogError::Lex { .. })));
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(matches!(lex("`define"), Err(VerilogError::Lex { .. })));
    }
}
