//! Robustness suite for the campaign server: deterministic protocol
//! fuzzing (parser- and session-level), slow-peer connection hygiene,
//! request deadlines, and the disk-fault matrix over the job store's
//! write seam — short writes, ENOSPC, torn renames, and corrupt
//! checkpoint tails all degrade to typed events and never lose an
//! admitted job.

use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use archval_serve::client::Client;
use archval_serve::{
    corrupt_checkpoint_tail, event_field, fuzz_corpus, line_is_event, BudgetSpec, CacheConfig, Cmd,
    FaultyIo, ModelRef, Request, Server, ServerConfig,
};

struct Dirs {
    root: PathBuf,
    sock: PathBuf,
    cache: PathBuf,
    jobs: PathBuf,
}

fn dirs(tag: &str) -> Dirs {
    let root = std::env::temp_dir().join(format!("archval-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    Dirs {
        sock: root.join("served.sock"),
        cache: root.join("cache"),
        jobs: root.join("jobs"),
        root,
    }
}

fn base_config(d: &Dirs) -> ServerConfig {
    ServerConfig {
        workers: 2,
        cache: CacheConfig { snapshot_dir: Some(d.cache.clone()), ..CacheConfig::default() },
        jobs_dir: Some(d.jobs.clone()),
        ..ServerConfig::default()
    }
}

fn start_unix(config: ServerConfig, sock: &Path) -> Arc<Server> {
    let server = Arc::new(Server::start(config).unwrap());
    // unlink any predecessor's socket first so the existence wait below
    // sees THIS server's bind — a stale file would let the caller
    // connect before the new listener is up
    let _ = std::fs::remove_file(sock);
    let listener = server.clone();
    let path = sock.to_path_buf();
    std::thread::spawn(move || {
        let _ = archval_serve::listen_unix(&listener, &path);
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "listener socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
    server
}

fn stop_unix(server: &Arc<Server>, sock: &Path) {
    // a failed connect here would leave join() waiting forever on
    // workers that were never told to drain — fail loudly instead
    let mut c = Client::connect_unix(sock).expect("connecting for shutdown");
    let _ = c.send(&Request::new(Cmd::Shutdown));
    let _ = c.recv_line();
    server.join();
}

fn micro_request(cmd: Cmd, id: &str) -> Request {
    let mut r = Request::new(cmd);
    r.id = id.into();
    r.model = Some(ModelRef::Named("pp-micro".into()));
    r
}

fn inject_request(id: &str, mutants: usize) -> Request {
    let mut r = micro_request(Cmd::Inject, id);
    r.mutants = Some(mutants);
    r.chaos = false;
    r.threads = Some(1);
    r.budget = Some(BudgetSpec { deadline_ms: Some(60_000), ..Default::default() });
    r
}

// ---------------------------------------------------------------- fuzz

#[test]
fn request_parse_survives_ten_thousand_fuzz_lines() {
    let mut total = 0usize;
    let mut accepted = 0usize;
    for seed in 1..=5u64 {
        for line in fuzz_corpus(seed, 2_100) {
            total += 1;
            match std::panic::catch_unwind(|| Request::parse(&line).is_ok()) {
                Ok(ok) => accepted += usize::from(ok),
                Err(_) => panic!("Request::parse panicked on fuzz line: {line:?}"),
            }
        }
    }
    assert!(total >= 10_000, "corpus too small: {total}");
    // the corpus seeds valid templates between the mutations — both
    // outcomes must be exercised for the run to mean anything
    assert!(accepted > 0, "no fuzz line parsed — the valid templates are broken");
    assert!(accepted < total, "every fuzz line parsed — the mutations are no-ops");
}

#[test]
fn hostile_nesting_and_oversized_fields_are_typed_errors() {
    let mut deep = String::from(r#"{"cmd":"ping","x":"#);
    deep.extend(std::iter::repeat_n('[', 50_000));
    assert!(Request::parse(&deep).is_err(), "unbounded nesting must be refused");

    let huge_id = format!(r#"{{"cmd":"enumerate","id":"{}"}}"#, "a".repeat(100_000));
    // parsing may succeed — the id validator is the backstop
    if let Ok(r) = Request::parse(&huge_id) {
        assert!(archval_serve::protocol::validate_job_id(&r.id).is_err());
    }
}

#[test]
fn session_survives_a_fuzzed_connection() {
    let d = dirs("session-fuzz");
    let server = start_unix(base_config(&d), &d.sock);

    let stream = UnixStream::connect(&d.sock).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let reader = std::thread::spawn(move || {
        let mut events = 0usize;
        for line in BufReader::new(stream).lines() {
            match line {
                Ok(l) => {
                    assert!(
                        l.starts_with('{') && l.ends_with('}'),
                        "server emitted a non-JSON line under fuzz: {l:?}"
                    );
                    events += 1;
                }
                Err(_) => break,
            }
        }
        events
    });
    for line in fuzz_corpus(7, 600) {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    writer.shutdown(Shutdown::Write).unwrap();
    let events = reader.join().unwrap();
    assert!(events > 0, "a fuzzed session must still produce typed responses");

    // the server survived: a fresh client gets a normal round trip
    let mut c = Client::connect_unix(&d.sock).unwrap();
    c.send(&Request::new(Cmd::Ping)).unwrap();
    let pong = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&pong, "pong"), "{pong}");

    stop_unix(&server, &d.sock);
    std::fs::remove_dir_all(&d.root).ok();
}

// ---------------------------------------------------- connection hygiene

#[test]
fn silent_peer_times_out_and_frees_its_session_thread() {
    let d = dirs("stalled");
    let mut config = base_config(&d);
    config.conn.read_timeout = Some(Duration::from_millis(200));
    let server = start_unix(config, &d.sock);

    // a peer that connects and never sends a byte
    let stalled = UnixStream::connect(&d.sock).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.sessions() == 0 {
        assert!(Instant::now() < deadline, "session thread never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    // the read timeout reaps it without the peer ever disconnecting
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.sessions() > 0 {
        assert!(Instant::now() < deadline, "session thread blocked forever on a silent peer");
        std::thread::sleep(Duration::from_millis(10));
    }

    // and the server still serves the next client
    let mut c = Client::connect_unix(&d.sock).unwrap();
    c.send(&Request::new(Cmd::Ping)).unwrap();
    let pong = c.recv_line().unwrap().unwrap();
    assert!(line_is_event(&pong, "pong"), "{pong}");
    drop(stalled);

    stop_unix(&server, &d.sock);
    std::fs::remove_dir_all(&d.root).ok();
}

// ------------------------------------------------------------ deadlines

#[test]
fn queued_job_past_its_deadline_is_cancelled_with_a_typed_error() {
    let d = dirs("deadline-queued");
    let mut config = base_config(&d);
    config.workers = 1;
    let server = start_unix(config, &d.sock);

    let mut c = Client::connect_unix(&d.sock).unwrap();
    // occupy the single worker, then queue a job that cannot make it
    c.send(&inject_request("dl-camp", 12)).unwrap();
    c.recv_until("verdict").unwrap();
    let mut doomed = micro_request(Cmd::Enumerate, "dl-e");
    doomed.deadline_ms = Some(50);
    c.send(&doomed).unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    let err = loop {
        assert!(Instant::now() < deadline, "no terminal event for the doomed job");
        let line = c.recv_line().unwrap().expect("connection stayed open");
        if line_is_event(&line, "error") && event_field(&line, "id").as_deref() == Some("dl-e") {
            break line;
        }
    };
    assert_eq!(event_field(&err, "kind").as_deref(), Some("deadline_exceeded"), "{err}");
    // terminal by policy: the job must not resurrect on restart
    let deadline = Instant::now() + Duration::from_secs(5);
    while d.jobs.join("dl-e.request.json").exists() {
        assert!(Instant::now() < deadline, "expired job's request file must be removed");
        std::thread::sleep(Duration::from_millis(10));
    }

    stop_unix(&server, &d.sock);
    std::fs::remove_dir_all(&d.root).ok();
}

#[test]
fn running_campaign_past_its_deadline_cancels_at_a_checkpoint() {
    let d = dirs("deadline-running");
    let server = start_unix(base_config(&d), &d.sock);

    let mut c = Client::connect_unix(&d.sock).unwrap();
    let mut r = inject_request("dl-camp", 500);
    r.deadline_ms = Some(400);
    c.send(&r).unwrap();

    let err = loop {
        let line = c.recv_line().unwrap().expect("connection stayed open");
        if line_is_event(&line, "error") {
            break line;
        }
        assert!(
            !line_is_event(&line, "done"),
            "a 500-mutant campaign cannot finish inside 400 ms: {line}"
        );
    };
    assert_eq!(event_field(&err, "kind").as_deref(), Some("deadline_exceeded"), "{err}");
    // the checkpoint survives: resubmission under a fresh deadline
    // reuses the mutants already decided
    assert!(
        d.jobs.join("dl-camp.checkpoint.jsonl").exists(),
        "checkpoint must be kept for resubmission"
    );
    assert!(!d.jobs.join("dl-camp.request.json").exists(), "expired job must not resurrect");

    stop_unix(&server, &d.sock);
    std::fs::remove_dir_all(&d.root).ok();
}

// ------------------------------------------------------ disk-fault matrix

#[test]
fn disk_fault_matrix_degrades_to_typed_events_and_loses_no_job() {
    for (seed, period) in [(11u64, 2u64), (23, 3), (47, 5)] {
        let d = dirs(&format!("faults-{seed}"));
        let io = Arc::new(FaultyIo::new(seed, period));
        let mut config = base_config(&d);
        config.io = io.clone();
        config.cache.io = io.clone();
        let server = start_unix(config, &d.sock);

        // drive jobs through every fault the schedule dishes out; each
        // must reach a terminal event — done, or a typed error
        let mut c = Client::connect_unix(&d.sock).unwrap();
        let ids: Vec<String> = (0..6).map(|i| format!("fj-{i}")).collect();
        let mut failed: Vec<String> = Vec::new();
        for id in &ids {
            c.send(&micro_request(Cmd::Enumerate, id)).unwrap();
            loop {
                let line = c.recv_line().unwrap().expect("session stayed open under faults");
                if line_is_event(&line, "done") {
                    break;
                }
                if line_is_event(&line, "error") {
                    let kind = event_field(&line, "kind").unwrap_or_default();
                    assert!(
                        kind == "failed" || kind == "panic",
                        "fault must surface as a typed error: {line}"
                    );
                    assert_ne!(kind, "panic", "a disk fault must never panic a worker: {line}");
                    failed.push(id.clone());
                    break;
                }
            }
        }
        assert!(
            !io.injected().is_empty(),
            "seed {seed} period {period} never fired a fault — the matrix is vacuous"
        );
        stop_unix(&server, &d.sock);

        // jobs whose report write faulted kept their request files;
        // a restart on a clean disk finishes every one of them
        let server = start_unix(base_config(&d), &d.sock);
        for id in &failed {
            let path = d.jobs.join(format!("{id}.report.json"));
            let deadline = Instant::now() + Duration::from_secs(120);
            while !path.exists() {
                assert!(
                    Instant::now() < deadline,
                    "job {id} admitted under faults was lost (seed {seed})"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        stop_unix(&server, &d.sock);
        std::fs::remove_dir_all(&d.root).ok();
    }
}

#[test]
fn torn_report_and_corrupt_checkpoint_tail_resume_byte_identically() {
    // baseline: the campaign uninterrupted
    let base = dirs("tail-baseline");
    let server = start_unix(base_config(&base), &base.sock);
    let mut c = Client::connect_unix(&base.sock).unwrap();
    c.send(&inject_request("t-camp", 12)).unwrap();
    c.recv_until("done").unwrap();
    stop_unix(&server, &base.sock);
    let expected = std::fs::read(base.jobs.join("t-camp.report.json")).unwrap();

    // crashed image: complete checkpoint, but the report rename tore and
    // the checkpoint tail was half-appended
    let d = dirs("tail");
    let server = start_unix(base_config(&d), &d.sock);
    let mut c = Client::connect_unix(&d.sock).unwrap();
    let req = inject_request("t-camp", 12);
    c.send(&req).unwrap();
    c.recv_until("done").unwrap();
    stop_unix(&server, &d.sock);

    let report = d.jobs.join("t-camp.report.json");
    let bytes = std::fs::read(&report).unwrap();
    std::fs::write(&report, &bytes[..bytes.len() / 2]).unwrap();
    let checkpoint = d.jobs.join("t-camp.checkpoint.jsonl");
    corrupt_checkpoint_tail(&checkpoint, 3).unwrap();
    // the crash happened before the request file was cleaned up
    std::fs::write(d.jobs.join("t-camp.request.json"), format!("{}\n", req.to_json())).unwrap();

    // restart: the truncated report reads as absent, the torn checkpoint
    // tail is dropped and its mutant re-run — byte-identical end state
    let server = start_unix(base_config(&d), &d.sock);
    assert_eq!(server.recovered(), 1, "torn report must not mask the unfinished job");
    let deadline = Instant::now() + Duration::from_secs(120);
    let resumed = loop {
        if let Ok(bytes) = std::fs::read(&report) {
            if !bytes.is_empty() && bytes.ends_with(b"\n") {
                break bytes;
            }
        }
        assert!(Instant::now() < deadline, "resumed report never appeared");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        String::from_utf8_lossy(&resumed),
        String::from_utf8_lossy(&expected),
        "resume across a torn report + corrupt checkpoint tail must be byte-identical"
    );
    stop_unix(&server, &d.sock);
    std::fs::remove_dir_all(&d.root).ok();
    std::fs::remove_dir_all(&base.root).ok();
}
