//! Campaign-server latency and throughput: what the fingerprint-keyed
//! graph cache buys over per-request re-enumeration.
//!
//! ```text
//! repro-serve [micro|standard|full|paper] [clients]
//! ```
//!
//! Starts an in-process [`archval_serve::Server`] on a Unix socket and
//! measures, over real protocol round trips:
//!
//! 1. **cold** — the first `enumerate` request ever (re-enumerates the
//!    model, persists the snapshot);
//! 2. **warm** — repeat requests against the resident graph (median and
//!    mean over 32 requests, plus the idle p50/p99 baseline);
//! 3. **snapshot restart** — a fresh server process image on the same
//!    cache dir (first request loads the snapshot file);
//! 4. **sustained** — `clients` concurrent connections each firing 50
//!    cache-hit requests through the retrying client, reported as
//!    requests/sec;
//! 5. **overload** — a deliberately small admission queue driven at
//!    ≥ 2× capacity (`--overload-secs=N`, default 5) by one greedy
//!    pipelined client plus three well-behaved clients, measuring shed
//!    rate, warm latency under load, and the fairness ratio (the
//!    worst-off well-behaved client's share of total completions over
//!    its 1/4 fair-share entitlement).
//!
//! The binary exits non-zero unless the `graph_ready` sources confirm
//! each phase hit the intended path (`enumerated` → `cache` →
//! `snapshot`), the warm median beats the cold request, and under
//! overload: the offered rate reached 2× capacity, no accepted job was
//! lost, the fairness ratio stayed ≥ 0.6, and the p99 warm latency
//! stayed ≤ 5× the idle p99 (floored at 10 ms). Results land in
//! `BENCH_serve.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use archval_bench::{emit_bench_json, peak_rss_bytes, run, BenchError};
use archval_serve::client::{Client, RetryPolicy};
use archval_serve::{
    event_field, line_is_event, CacheConfig, Cmd, ModelRef, Request, SchedConfig, Server,
    ServerConfig,
};
use serde::Serialize;

#[derive(Serialize)]
struct ServeBench {
    scale: String,
    clients: usize,
    cold_request_seconds: f64,
    warm_request_seconds_median: f64,
    warm_request_seconds_mean: f64,
    snapshot_request_seconds: f64,
    cold_over_warm_speedup: f64,
    sustained_requests: usize,
    sustained_seconds: f64,
    requests_per_sec: f64,
    overload: OverloadBench,
    peak_rss_bytes: Option<u64>,
}

#[derive(Serialize)]
struct OverloadBench {
    duration_seconds: f64,
    capacity_per_sec: f64,
    offered_per_sec: f64,
    submitted: u64,
    completed: u64,
    shed: u64,
    errored: u64,
    lost: u64,
    shed_rate: f64,
    well_behaved_solo_per_sec: f64,
    well_behaved_contended_per_sec: f64,
    fairness_ratio: f64,
    warm_p50_idle_seconds: f64,
    warm_p99_idle_seconds: f64,
    warm_p50_overload_seconds: f64,
    warm_p99_overload_seconds: f64,
}

fn positional(n: usize) -> Option<String> {
    std::env::args().skip(1).filter(|a| !a.starts_with("--")).nth(n)
}

fn flag_value(name: &str) -> Option<String> {
    let prefix = format!("--{name}=");
    std::env::args().skip(1).find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn io_err(path: &std::path::Path) -> impl Fn(std::io::Error) -> BenchError + '_ {
    move |source| BenchError::Io { path: path.to_path_buf(), source }
}

/// Sends one enumerate request and returns (seconds-to-done, source).
fn timed_enumerate(
    sock: &std::path::Path,
    model: &str,
    id: &str,
) -> Result<(f64, String), BenchError> {
    let mut client = Client::connect_unix(sock).map_err(io_err(sock))?;
    let mut req = Request::new(Cmd::Enumerate);
    req.id = id.into();
    req.model = Some(ModelRef::Named(model.into()));
    let t0 = Instant::now();
    client.send(&req).map_err(io_err(sock))?;
    let lines = client.recv_until("done").map_err(io_err(sock))?;
    let elapsed = t0.elapsed().as_secs_f64();
    let ready = lines
        .iter()
        .find(|l| line_is_event(l, "graph_ready"))
        .ok_or_else(|| BenchError::Invalid(format!("no graph_ready for {id}: {lines:?}")))?;
    let source = ready
        .split("\"source\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .unwrap_or("")
        .to_string();
    Ok((elapsed, source))
}

fn start(
    sock: &std::path::Path,
    cache_dir: &std::path::Path,
    jobs_dir: &std::path::Path,
    workers: usize,
    sched: SchedConfig,
) -> Result<Arc<Server>, BenchError> {
    let config = ServerConfig {
        workers,
        cache: CacheConfig {
            snapshot_dir: Some(cache_dir.to_path_buf()),
            ..CacheConfig::default()
        },
        jobs_dir: Some(jobs_dir.to_path_buf()),
        sched,
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::start(config).map_err(io_err(cache_dir))?);
    let listener = server.clone();
    let sock = sock.to_path_buf();
    std::thread::spawn(move || {
        if let Err(e) = archval_serve::listen_unix(&listener, &sock) {
            eprintln!("repro-serve: listener failed: {e}");
        }
    });
    // the listener thread binds asynchronously; callers connect with retry
    Ok(server)
}

fn stop(sock: &std::path::Path, server: &Arc<Server>) {
    if let Ok(mut c) = Client::connect_unix(sock) {
        let _ = c.send(&Request::new(Cmd::Shutdown));
        let _ = c.recv_line();
    }
    server.join();
}

fn connect_with_retry(sock: &std::path::Path) -> Result<Client, BenchError> {
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match Client::connect_unix(sock) {
            Ok(c) => return Ok(c),
            Err(e) if Instant::now() >= deadline => {
                return Err(BenchError::Io { path: sock.to_path_buf(), source: e })
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
}

fn main() {
    run("repro-serve", || {
        let scale_word = positional(0).unwrap_or_else(|| "micro".into());
        if !matches!(scale_word.as_str(), "micro" | "standard" | "full" | "paper") {
            return Err(BenchError::Invalid(format!(
                "unknown scale {scale_word:?} (expected micro|standard|full|paper)"
            )));
        }
        let model = format!("pp-{scale_word}");
        let clients: usize = positional(1).map(|s| s.parse().unwrap_or(0)).unwrap_or(4).max(1);

        let root = std::env::temp_dir().join(format!("repro-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).map_err(io_err(&root))?;
        let sock = root.join("served.sock");
        let cache_dir = root.join("cache");
        let jobs_dir = root.join("jobs");

        // ---- cold + warm on one server ----
        let server = start(&sock, &cache_dir, &jobs_dir, clients.max(2), SchedConfig::default())?;
        // wait until the listener accepts
        drop(connect_with_retry(&sock)?);

        let (cold, source) = timed_enumerate(&sock, &model, "cold-0")?;
        if source != "enumerated" {
            return Err(BenchError::Invalid(format!(
                "cold request came from {source:?}, expected a fresh enumeration"
            )));
        }
        eprintln!("cold request ({model}): {cold:.4} s");

        const WARM: usize = 32;
        let mut warm = Vec::with_capacity(WARM);
        for i in 0..WARM {
            let (t, source) = timed_enumerate(&sock, &model, &format!("warm-{i}"))?;
            if source != "cache" {
                return Err(BenchError::Invalid(format!(
                    "warm request {i} came from {source:?}, expected the cache"
                )));
            }
            warm.push(t);
        }
        warm.sort_by(f64::total_cmp);
        let warm_median = warm[WARM / 2];
        let warm_mean = warm.iter().sum::<f64>() / WARM as f64;
        eprintln!("warm requests: median {warm_median:.6} s, mean {warm_mean:.6} s over {WARM}");
        if warm_median >= cold {
            return Err(BenchError::Invalid(format!(
                "cache bought nothing: warm median {warm_median:.4} s >= cold {cold:.4} s"
            )));
        }

        // ---- sustained throughput with N concurrent clients ----
        // submit_with_retry keeps the loop correct even when a burst
        // briefly fills the admission queue: an `overloaded` answer backs
        // off and resubmits instead of failing the run
        const PER_CLIENT: usize = 50;
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let sock = sock.clone();
                let model = model.clone();
                std::thread::spawn(move || -> Result<(), String> {
                    let mut client = Client::connect_unix(&sock).map_err(|e| e.to_string())?;
                    let policy = RetryPolicy::default();
                    for i in 0..PER_CLIENT {
                        let mut req = Request::new(Cmd::Enumerate);
                        req.id = format!("sus-{c}-{i}");
                        req.model = Some(ModelRef::Named(model.clone()));
                        client.submit_with_retry(&req, &policy).map_err(|e| e.to_string())?;
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            h.join()
                .map_err(|_| BenchError::Invalid("sustained client panicked".into()))?
                .map_err(BenchError::Invalid)?;
        }
        let sustained_seconds = t0.elapsed().as_secs_f64();
        let sustained_requests = clients * PER_CLIENT;
        let requests_per_sec = sustained_requests as f64 / sustained_seconds;
        eprintln!(
            "sustained: {sustained_requests} requests over {clients} clients in \
             {sustained_seconds:.3} s — {requests_per_sec:.0} req/s"
        );
        stop(&sock, &server);

        // ---- snapshot warm-start on a fresh server over the same cache ----
        // (its own socket path: the stopped listener removes its socket
        // file asynchronously and must not race the new bind)
        let sock = root.join("served2.sock");
        let jobs2 = root.join("jobs2");
        let server = start(&sock, &cache_dir, &jobs2, 2, SchedConfig::default())?;
        drop(connect_with_retry(&sock)?);
        let (snapshot, source) = timed_enumerate(&sock, &model, "snap-0")?;
        if source != "snapshot" {
            return Err(BenchError::Invalid(format!(
                "restart request came from {source:?}, expected the snapshot file"
            )));
        }
        eprintln!("snapshot warm-start request: {snapshot:.4} s");
        stop(&sock, &server);

        // ---- overload: 2× capacity into a small admission queue ----
        let overload_secs: u64 =
            flag_value("overload-secs").and_then(|s| s.parse().ok()).unwrap_or(5);
        let overload = overload_phase(&root, &cache_dir, &model, overload_secs)?;

        let result = ServeBench {
            scale: scale_word,
            clients,
            cold_request_seconds: cold,
            warm_request_seconds_median: warm_median,
            warm_request_seconds_mean: warm_mean,
            snapshot_request_seconds: snapshot,
            cold_over_warm_speedup: cold / warm_median.max(1e-9),
            sustained_requests,
            sustained_seconds,
            requests_per_sec,
            overload,
            peak_rss_bytes: peak_rss_bytes(),
        };
        emit_bench_json("serve", &result)?;
        std::fs::remove_dir_all(&root).ok();
        Ok(())
    });
}

/// One well-behaved synchronous request loop: submit with retry, record
/// the service latency of each *successful* attempt (backoff sleeps
/// excluded — the gate is on how long the server takes to serve a warm
/// request under load, not on how patient the client chose to be).
fn well_behaved_loop(
    sock: &std::path::Path,
    model: &str,
    name: &str,
    deadline: Instant,
) -> Result<(u64, Vec<f64>), String> {
    let mut client = Client::connect_unix(sock).map_err(|e| e.to_string())?;
    let policy = RetryPolicy { attempts: 64, base_ms: 5, cap_ms: 250 };
    let mut completed = 0u64;
    let mut latencies = Vec::new();
    let mut i = 0usize;
    while Instant::now() < deadline {
        let mut req = Request::new(Cmd::Enumerate);
        req.id = format!("{name}-{i}");
        req.model = Some(ModelRef::Named(model.to_string()));
        req.client = Some(name.to_string());
        i += 1;
        let t0 = Instant::now();
        client.submit_with_retry(&req, &policy).map_err(|e| e.to_string())?;
        latencies.push(t0.elapsed().as_secs_f64());
        completed += 1;
    }
    Ok((completed, latencies))
}

/// The greedy client: pipelines windows of requests under one namespace
/// and never backs off. Every submitted id is read to a terminal event
/// (`done` | `error` | `overloaded`), so nothing it offered can be lost
/// silently.
fn greedy_loop(
    sock: &std::path::Path,
    model: &str,
    deadline: Instant,
) -> Result<(u64, u64, u64, u64), String> {
    const WINDOW: usize = 64;
    let mut client = Client::connect_unix(sock).map_err(|e| e.to_string())?;
    let (mut submitted, mut completed, mut shed, mut errored) = (0u64, 0u64, 0u64, 0u64);
    let mut round = 0usize;
    while Instant::now() < deadline {
        let ids: Vec<String> = (0..WINDOW).map(|i| format!("greedy-{round}-{i}")).collect();
        round += 1;
        for id in &ids {
            let mut req = Request::new(Cmd::Enumerate);
            req.id = id.clone();
            req.model = Some(ModelRef::Named(model.to_string()));
            req.client = Some("greedy".to_string());
            client.send(&req).map_err(|e| e.to_string())?;
            submitted += 1;
        }
        let mut terminal = 0usize;
        while terminal < ids.len() {
            let line = client
                .recv_line()
                .map_err(|e| e.to_string())?
                .ok_or_else(|| "server closed the greedy connection".to_string())?;
            let of_batch = event_field(&line, "id").is_some_and(|id| ids.contains(&id));
            if !of_batch {
                continue;
            }
            if line_is_event(&line, "done") {
                completed += 1;
                terminal += 1;
            } else if line_is_event(&line, "overloaded") {
                shed += 1;
                terminal += 1;
            } else if line_is_event(&line, "error") {
                errored += 1;
                terminal += 1;
            }
        }
    }
    Ok((submitted, completed, shed, errored))
}

/// Drives a small-queue server at ≥ 2× capacity and gates on fairness,
/// tail latency, and zero lost jobs.
fn overload_phase(
    root: &std::path::Path,
    cache_dir: &std::path::Path,
    model: &str,
    overload_secs: u64,
) -> Result<OverloadBench, BenchError> {
    const WELL_BEHAVED: usize = 3;
    let sock = root.join("served3.sock");
    let jobs = root.join("jobs3");
    let sched =
        SchedConfig { max_queued_jobs: 16, max_queued_per_client: 8, ..SchedConfig::default() };
    let server = start(&sock, cache_dir, &jobs, 2, sched)?;
    drop(connect_with_retry(&sock)?);
    // make the model resident so the phase measures warm-path scheduling
    let (_, source) = timed_enumerate(&sock, model, "overload-warmup")?;
    if source.is_empty() {
        return Err(BenchError::Invalid("overload warmup produced no graph_ready".into()));
    }

    // idle baseline: one well-behaved client on an otherwise idle
    // server, over a persistent connection — this is the latency the
    // 5x-under-overload gate is anchored to
    let solo_secs = (overload_secs / 2).clamp(2, 10);
    let solo_deadline = Instant::now() + Duration::from_secs(solo_secs);
    let t0 = Instant::now();
    let (solo_completed, mut idle_latencies) =
        well_behaved_loop(&sock, model, "wb-solo", solo_deadline).map_err(BenchError::Invalid)?;
    let solo_rate = solo_completed as f64 / t0.elapsed().as_secs_f64();
    idle_latencies.sort_by(f64::total_cmp);
    eprintln!("overload baseline: {solo_rate:.0} well-behaved req/s solo");

    // contended: one greedy pipelined client + three well-behaved ones
    let deadline = Instant::now() + Duration::from_secs(overload_secs);
    let t0 = Instant::now();
    let greedy = {
        let sock = sock.clone();
        let model = model.to_string();
        std::thread::spawn(move || greedy_loop(&sock, &model, deadline))
    };
    let wb: Vec<_> = (0..WELL_BEHAVED)
        .map(|i| {
            let sock = sock.clone();
            let model = model.to_string();
            std::thread::spawn(move || {
                well_behaved_loop(&sock, &model, &format!("wb-{i}"), deadline)
            })
        })
        .collect();
    let (submitted, completed, shed, errored) = greedy
        .join()
        .map_err(|_| BenchError::Invalid("greedy client panicked".into()))?
        .map_err(BenchError::Invalid)?;
    let mut wb_rates = Vec::new();
    let mut wb_latencies = Vec::new();
    let mut wb_completed = 0u64;
    for h in wb {
        let (n, lat) = h
            .join()
            .map_err(|_| BenchError::Invalid("well-behaved client panicked".into()))?
            .map_err(BenchError::Invalid)?;
        wb_completed += n;
        wb_rates.push(n as f64);
        wb_latencies.extend(lat);
    }
    let duration = t0.elapsed().as_secs_f64();
    stop(&sock, &server);

    // capacity is what the saturated server actually completed; offered
    // adds everything thrown at it (the greedy client's refused
    // submissions included)
    let total_completed = completed + wb_completed;
    let capacity = total_completed as f64 / duration;
    let offered = (submitted + wb_completed) as f64 / duration;
    let shed_rate = shed as f64 / submitted.max(1) as f64;
    let lost = submitted.saturating_sub(completed + shed + errored);
    let contended_rate = wb_completed as f64 / WELL_BEHAVED as f64 / duration;
    // fair share: 4 active namespaces, so each is entitled to 1/4 of the
    // completions the server managed. The gate takes the worst-off
    // well-behaved client's share against that entitlement.
    let fair_share = 1.0 / (WELL_BEHAVED + 1) as f64;
    let fairness = wb_rates
        .iter()
        .map(|n| (n / total_completed.max(1) as f64) / fair_share)
        .fold(f64::INFINITY, f64::min);
    wb_latencies.sort_by(f64::total_cmp);
    let p50_overload = percentile(&wb_latencies, 0.50);
    let p99_overload = percentile(&wb_latencies, 0.99);
    let p50_idle = percentile(&idle_latencies, 0.50);
    let p99_idle = percentile(&idle_latencies, 0.99);
    eprintln!(
        "overload: offered {offered:.0} req/s vs capacity {capacity:.0}; \
         {completed}/{submitted} greedy completed, {shed} shed ({:.0}%), {errored} errored; \
         fairness {fairness:.2}; wb p99 {p99_overload:.4}s (idle {p99_idle:.4}s)",
        shed_rate * 100.0
    );

    if offered < 2.0 * capacity {
        return Err(BenchError::Invalid(format!(
            "overload never materialized: offered {offered:.0} req/s < 2x capacity {capacity:.0}"
        )));
    }
    if lost > 0 {
        return Err(BenchError::Invalid(format!(
            "{lost} accepted job(s) lost: submitted {submitted}, completed {completed}, \
             shed {shed}, errored {errored}"
        )));
    }
    if fairness < 0.6 {
        return Err(BenchError::Invalid(format!(
            "greedy client starved well-behaved clients: fairness ratio {fairness:.2} < 0.6"
        )));
    }
    let p99_bound = 5.0 * p99_idle.max(0.010);
    if p99_overload > p99_bound {
        return Err(BenchError::Invalid(format!(
            "warm p99 under overload {p99_overload:.4}s exceeds bound {p99_bound:.4}s \
             (5x max(idle p99, 10ms))"
        )));
    }

    Ok(OverloadBench {
        duration_seconds: duration,
        capacity_per_sec: capacity,
        offered_per_sec: offered,
        submitted,
        completed,
        shed,
        errored,
        lost,
        shed_rate,
        well_behaved_solo_per_sec: solo_rate,
        well_behaved_contended_per_sec: contended_rate,
        fairness_ratio: fairness,
        warm_p50_idle_seconds: p50_idle,
        warm_p99_idle_seconds: p99_idle,
        warm_p50_overload_seconds: p50_overload,
        warm_p99_overload_seconds: p99_overload,
    })
}
