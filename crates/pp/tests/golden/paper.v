// Protocol Processor control logic (generated)
// scale: fill_beats=16 extra_stage=true dual_comm_slot=true
module pp_control(clk, reset, iclass, iclass2, ihit, dhit, victim_dirty, same_line,
                  inbox_ready, outbox_ready, mem_ready, stall_out);
  input clk, reset;
  input [2:0] iclass;       // archval: abstract classes=5
  input [1:0] iclass2;      // archval: abstract classes=3
  input ihit;             // archval: abstract
  input dhit;             // archval: abstract
  input victim_dirty;             // archval: abstract
  input same_line;             // archval: abstract
  input inbox_ready;             // archval: abstract
  input outbox_ready;             // archval: abstract
  input mem_ready;             // archval: abstract
  output stall_out;

  reg booted;
  reg [2:0] m_class;
  reg [1:0] m2_class;
  reg [2:0] e_class;
  reg [1:0] e2_class;
  reg [2:0] w_class;
  reg [1:0] irefill;
  reg [2:0] drefill;
  reg [3:0] dcnt;
  reg [3:0] icnt;
  reg spill_pend;
  reg store_pend;
  reg conflict;

  // archval: control-begin
  wire is_ld;
  wire is_sd;
  wire is_mem;
  wire is_sw;
  wire is_se;
  wire ext_stall;
  wire conflict_stall;
  wire dr_idle;
  wire dr_req;
  wire dr_crit;
  wire dr_fill;
  wire dr_spill;
  wire d_stall;
  wire mem_stall;
  wire advance;
  wire d_miss_start;
  wire ir_idle;
  wire i_miss_start;
  wire fetch_valid;
  wire sd_completes;
  wire [2:0] fetched_m;
  wire [2:0] next_m;
  wire [1:0] fetched_m2;

  assign is_ld = m_class == 3'd1;
  assign is_sd = m_class == 3'd2;
  assign is_mem = is_ld || is_sd;
  assign is_sw = m_class == 3'd3;
  assign is_se = m_class == 3'd4;
  assign ext_stall = (is_se && !outbox_ready) || (is_sw && !inbox_ready)
                  || ((m2_class == 2'd2) && !outbox_ready)
                  || ((m2_class == 2'd1) && !inbox_ready);
  assign conflict_stall = conflict;
  assign dr_idle = drefill == 3'd0;
  assign dr_req = drefill == 3'd1;
  assign dr_crit = drefill == 3'd2;
  assign dr_fill = drefill == 3'd3;
  assign dr_spill = drefill == 3'd4;
  assign d_stall = is_mem && !ext_stall && !conflict_stall
                && (dr_req || dr_fill || dr_spill || (!dhit && dr_idle));
  assign mem_stall = ext_stall || conflict_stall || d_stall;
  assign advance = !mem_stall;
  assign d_miss_start = is_mem && !dhit && dr_idle && !ext_stall && !conflict_stall;
  assign ir_idle = irefill == 2'd0;
  assign i_miss_start = advance && !ihit && ir_idle;
  assign fetch_valid = advance && ihit && ir_idle;
  assign sd_completes = advance && is_sd;
  assign fetched_m = fetch_valid ? iclass : 3'd5;
  assign fetched_m2 = fetch_valid ? iclass2 : 2'd3;
  assign next_m = advance ? e_class : m_class;
  assign stall_out = mem_stall;

  always @(posedge clk) begin
    if (reset) begin
      booted <= 1'b0;
      m_class <= 3'd5;
      m2_class <= 2'd3;
      e_class <= 3'd5;
      e2_class <= 2'd3;
      w_class <= 3'd5;
      irefill <= 2'd0;
      drefill <= 3'd0;
      dcnt <= 4'd0;
      icnt <= 4'd0;
      spill_pend <= 1'b0;
      store_pend <= 1'b0;
      conflict <= 1'b0;
    end else begin
      booted <= 1'b1;
      if (advance) begin
        m_class <= e_class;
        e_class <= fetched_m;
        m2_class <= e2_class;
        e2_class <= fetched_m2;
        w_class <= m_class;
      end
      case (drefill)
        3'd0: if (d_miss_start) drefill <= 3'd1;
        3'd1: if (mem_ready && !(irefill == 2'd2)) drefill <= 3'd2;
        3'd2: drefill <= 3'd3;
        3'd3: if (mem_ready && (dcnt == 4'd15)) begin
          if (spill_pend) drefill <= 3'd4;
          else drefill <= 3'd0;
        end
        default: if (mem_ready) drefill <= 3'd0;
      endcase
      if (dr_crit) dcnt <= 4'd0;
      else if (dr_fill && mem_ready) begin
        if (dcnt == 4'd15) dcnt <= 4'd0;
        else dcnt <= dcnt + 4'd1;
      end
      if (d_miss_start) spill_pend <= victim_dirty;
      else if (dr_spill && mem_ready) spill_pend <= 1'b0;
      case (irefill)
        2'd0: if (i_miss_start) irefill <= 2'd1;
        2'd1: if (mem_ready && dr_idle) irefill <= 2'd2;
        2'd2: if (mem_ready && (icnt == 4'd15)) irefill <= 2'd3;
        default: irefill <= 2'd0;
      endcase
      if ((irefill == 2'd2) && mem_ready) begin
        if (icnt == 4'd15) icnt <= 4'd0;
        else icnt <= icnt + 4'd1;
      end
      store_pend <= sd_completes;
      conflict <= sd_completes
                && ((next_m == 3'd2) || ((next_m == 3'd1) && same_line));
    end
  end
  // archval: control-end
endmodule
