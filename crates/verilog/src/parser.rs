//! Recursive-descent parser for the stylized Verilog subset.
//!
//! The subset is the one the paper targets: synthesizable modules whose
//! translation is "mostly a one-to-one syntactic correspondence" with the
//! FSM language. `// archval: off` / `on` regions are skipped entirely
//! (the paper's escape hatch for error and diagnostic code).

use crate::annot::Directive;
use crate::ast::{
    Always, Assign, Decl, Design, Expr, Module, NetKind, PortDir, Sensitivity, Stmt, VBinary,
    VUnary,
};
use crate::error::VerilogError;
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses a source string into a [`Design`].
///
/// # Errors
///
/// Returns a lex, parse or directive error with the offending line number.
pub fn parse(src: &str) -> Result<Design, VerilogError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.design()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<SpannedTok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, VerilogError> {
        Err(VerilogError::Parse { line: self.line(), msg: msg.into() })
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), VerilogError> {
        match self.peek() {
            Some(Tok::Punct(q)) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other:?}")),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) && {
            self.pos += 1;
            true
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), VerilogError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            other => self.err(format!("expected keyword `{kw}`, found {other:?}")),
        }
    }

    fn try_kw(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) && {
            self.pos += 1;
            true
        }
    }

    fn ident(&mut self) -> Result<String, VerilogError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn number(&mut self) -> Result<u64, VerilogError> {
        match self.peek() {
            Some(Tok::Number(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            Some(Tok::Sized(_, v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            other => self.err(format!("expected number, found {other:?}")),
        }
    }

    fn design(&mut self) -> Result<Design, VerilogError> {
        let mut modules = Vec::new();
        while self.peek().is_some() {
            // tolerate stray directives between modules
            if let Some(Tok::Directive(_)) = self.peek() {
                self.pos += 1;
                continue;
            }
            modules.push(self.module()?);
        }
        Ok(Design { modules })
    }

    fn module(&mut self) -> Result<Module, VerilogError> {
        self.eat_kw("module")?;
        let name = self.ident()?;
        let mut ports = Vec::new();
        if self.try_punct("(") && !self.try_punct(")") {
            loop {
                // tolerate ANSI-style `input [3:0] x` in the header
                while matches!(self.peek(), Some(Tok::Ident(s))
                    if s == "input" || s == "output" || s == "inout" || s == "wire" || s == "reg")
                {
                    self.pos += 1;
                    // optional range
                    self.try_range()?;
                }
                ports.push(self.ident()?);
                if self.try_punct(")") {
                    break;
                }
                self.eat_punct(",")?;
            }
        }
        self.eat_punct(";")?;

        let mut module = Module {
            name,
            ports,
            decls: Vec::new(),
            assigns: Vec::new(),
            always: Vec::new(),
            directives: Vec::new(),
        };
        let mut pending: Vec<(Directive, u32)> = Vec::new();
        let mut in_control = true;
        let mut saw_control_marker = false;

        loop {
            match self.peek() {
                None => return self.err("unexpected end of input inside module"),
                Some(Tok::Ident(s)) if s == "endmodule" => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Directive(body)) => {
                    let line = self.line();
                    let body = body.clone();
                    self.pos += 1;
                    let d = Directive::parse(&body, line)?;
                    match d {
                        Directive::Off => {
                            // skip tokens until `archval: on`
                            loop {
                                match self.bump() {
                                    None => return self.err("unterminated `archval: off` region"),
                                    Some(SpannedTok { tok: Tok::Directive(b), line }) => {
                                        if Directive::parse(&b, line)? == Directive::On {
                                            break;
                                        }
                                    }
                                    Some(_) => {}
                                }
                            }
                        }
                        Directive::On => {} // stray `on` is harmless
                        Directive::ControlBegin => {
                            if !saw_control_marker {
                                // first marker: everything before it was
                                // outside the control section
                                for a in &mut module.assigns {
                                    a.in_control = false;
                                }
                                for a in &mut module.always {
                                    a.in_control = false;
                                }
                            }
                            saw_control_marker = true;
                            in_control = true;
                            module.directives.push(Directive::ControlBegin);
                        }
                        Directive::ControlEnd => {
                            saw_control_marker = true;
                            in_control = false;
                            module.directives.push(Directive::ControlEnd);
                        }
                        decl_directive => {
                            // attach to decls on the same line, else defer
                            let mut attached = false;
                            for dd in module.decls.iter_mut().rev() {
                                if dd.line == line {
                                    dd.directives.push(decl_directive.clone());
                                    attached = true;
                                } else {
                                    break;
                                }
                            }
                            if !attached {
                                pending.push((decl_directive, line));
                            }
                        }
                    }
                }
                Some(Tok::Ident(s)) if s == "assign" => {
                    self.pos += 1;
                    let line = self.line();
                    let lhs = self.ident()?;
                    self.eat_punct("=")?;
                    let rhs = self.expr()?;
                    self.eat_punct(";")?;
                    module.assigns.push(Assign { lhs, rhs, line, in_control });
                }
                Some(Tok::Ident(s)) if s == "always" => {
                    let line = self.line();
                    self.pos += 1;
                    let sensitivity = self.sensitivity()?;
                    let body = self.stmt()?;
                    module.always.push(Always { sensitivity, body, line, in_control });
                }
                Some(Tok::Ident(s))
                    if s == "input"
                        || s == "output"
                        || s == "inout"
                        || s == "wire"
                        || s == "reg" =>
                {
                    let decls = self.decl()?;
                    for mut d in decls {
                        for (pd, _) in pending.drain(..) {
                            d.directives.push(pd);
                        }
                        module.decls.push(d);
                    }
                }
                Some(Tok::Ident(s)) if s == "parameter" => {
                    // `parameter NAME = value;` — consumed and ignored by
                    // the subset (widths must be literal)
                    self.pos += 1;
                    let _ = self.ident()?;
                    self.eat_punct("=")?;
                    let _ = self.number()?;
                    self.eat_punct(";")?;
                }
                Some(Tok::Ident(s)) if s == "initial" => {
                    return self.err(
                        "`initial` blocks are outside the synthesizable subset; \
                         wrap them in `// archval: off` / `// archval: on`",
                    );
                }
                other => return self.err(format!("unexpected module item {other:?}")),
            }
        }
        // merge split declarations (`output q;` + `reg q;` is the standard
        // idiom for an output register)
        let mut merged: Vec<Decl> = Vec::new();
        for d in module.decls.drain(..) {
            match merged.iter_mut().find(|m| m.name == d.name) {
                Some(m) => {
                    if m.dir.is_none() {
                        m.dir = d.dir;
                    }
                    if d.kind == NetKind::Reg {
                        m.kind = NetKind::Reg;
                    }
                    m.width = m.width.max(d.width);
                    m.directives.extend(d.directives);
                }
                None => merged.push(d),
            }
        }
        module.decls = merged;
        Ok(module)
    }

    /// Parses `[h:l]` if present; returns the width.
    fn try_range(&mut self) -> Result<Option<u32>, VerilogError> {
        if !self.try_punct("[") {
            return Ok(None);
        }
        let h = self.number()?;
        self.eat_punct(":")?;
        let l = self.number()?;
        self.eat_punct("]")?;
        if l > h {
            return self.err(format!("descending range [{h}:{l}] required, low > high"));
        }
        let width = (h - l + 1) as u32;
        if width > 32 {
            return self.err(format!("width {width} exceeds the supported 32 bits"));
        }
        Ok(Some(width))
    }

    fn decl(&mut self) -> Result<Vec<Decl>, VerilogError> {
        let line = self.line();
        let mut dir = None;
        let mut kind = None;
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if s == "input" => {
                    dir = Some(PortDir::Input);
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "output" => {
                    dir = Some(PortDir::Output);
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "inout" => {
                    dir = Some(PortDir::Inout);
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "wire" => {
                    kind = Some(NetKind::Wire);
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "reg" => {
                    kind = Some(NetKind::Reg);
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let width = self.try_range()?.unwrap_or(1);
        let kind = kind.unwrap_or(NetKind::Wire);
        let mut out = Vec::new();
        loop {
            let name = self.ident()?;
            out.push(Decl { name, width, kind, dir, directives: Vec::new(), line });
            if self.try_punct(";") {
                break;
            }
            self.eat_punct(",")?;
        }
        Ok(out)
    }

    fn sensitivity(&mut self) -> Result<Sensitivity, VerilogError> {
        self.eat_punct("@")?;
        self.eat_punct("(")?;
        if self.try_punct("*") {
            self.eat_punct(")")?;
            return Ok(Sensitivity::Comb);
        }
        if self.try_kw("posedge") {
            let clk = self.ident()?;
            // tolerate `or posedge rst` — the reset branch must be modelled
            // by the leading if, which the subset treats synchronously
            while self.try_kw("or") {
                self.eat_kw("posedge")?;
                let _ = self.ident()?;
            }
            self.eat_punct(")")?;
            return Ok(Sensitivity::Posedge { clk });
        }
        // explicit combinational list: `a or b or c`
        let _ = self.ident()?;
        while self.try_kw("or") {
            let _ = self.ident()?;
        }
        self.eat_punct(")")?;
        Ok(Sensitivity::Comb)
    }

    fn stmt(&mut self) -> Result<Stmt, VerilogError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "begin" => {
                self.pos += 1;
                let mut stmts = Vec::new();
                while !self.try_kw("end") {
                    if self.peek().is_none() {
                        return self.err("unterminated `begin` block");
                    }
                    // skip directives inside statement blocks
                    if let Some(Tok::Directive(_)) = self.peek() {
                        self.pos += 1;
                        continue;
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Some(Tok::Ident(s)) if s == "if" => {
                self.pos += 1;
                self.eat_punct("(")?;
                let cond = self.expr()?;
                self.eat_punct(")")?;
                let then = Box::new(self.stmt()?);
                let other = if self.try_kw("else") { Some(Box::new(self.stmt()?)) } else { None };
                Ok(Stmt::If { cond, then, other })
            }
            Some(Tok::Ident(s)) if s == "case" || s == "casez" || s == "casex" => {
                if s != "case" {
                    return self.err("casez/casex are outside the synthesizable subset");
                }
                self.pos += 1;
                self.eat_punct("(")?;
                let scrutinee = self.expr()?;
                self.eat_punct(")")?;
                let mut arms = Vec::new();
                let mut default = None;
                loop {
                    if self.try_kw("endcase") {
                        break;
                    }
                    if self.try_kw("default") {
                        let _ = self.try_punct(":");
                        default = Some(Box::new(self.stmt()?));
                        continue;
                    }
                    if self.peek().is_none() {
                        return self.err("unterminated `case`");
                    }
                    let mut labels = vec![self.expr()?];
                    while self.try_punct(",") {
                        labels.push(self.expr()?);
                    }
                    self.eat_punct(":")?;
                    let body = self.stmt()?;
                    arms.push((labels, body));
                }
                Ok(Stmt::Case { scrutinee, arms, default })
            }
            Some(Tok::Punct(";")) => {
                self.pos += 1;
                Ok(Stmt::Empty)
            }
            Some(Tok::Ident(_)) => {
                let lhs = self.ident()?;
                if self.try_punct("<=") {
                    let rhs = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::NonBlocking { lhs, rhs })
                } else if self.try_punct("=") {
                    let rhs = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Blocking { lhs, rhs })
                } else {
                    self.err("expected `<=` or `=` in assignment")
                }
            }
            other => self.err(format!("unexpected statement start {other:?}")),
        }
    }

    fn expr(&mut self) -> Result<Expr, VerilogError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, VerilogError> {
        let cond = self.logical_or()?;
        if self.try_punct("?") {
            let then = self.expr()?;
            self.eat_punct(":")?;
            let other = self.ternary()?;
            Ok(Expr::Ternary { cond: Box::new(cond), then: Box::new(then), other: Box::new(other) })
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.logical_and()?;
        while self.try_punct("||") {
            let b = self.logical_and()?;
            a = Expr::Binary(VBinary::LogicalOr, Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn logical_and(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.bit_or()?;
        while self.try_punct("&&") {
            let b = self.bit_or()?;
            a = Expr::Binary(VBinary::LogicalAnd, Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn bit_or(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.bit_xor()?;
        while self.try_punct("|") {
            let b = self.bit_xor()?;
            a = Expr::Binary(VBinary::BitOr, Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn bit_xor(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.bit_and()?;
        while self.try_punct("^") {
            let b = self.bit_and()?;
            a = Expr::Binary(VBinary::BitXor, Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn bit_and(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.equality()?;
        while self.try_punct("&") {
            let b = self.equality()?;
            a = Expr::Binary(VBinary::BitAnd, Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn equality(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.relational()?;
        loop {
            if self.try_punct("==") {
                let b = self.relational()?;
                a = Expr::Binary(VBinary::Eq, Box::new(a), Box::new(b));
            } else if self.try_punct("!=") {
                let b = self.relational()?;
                a = Expr::Binary(VBinary::Ne, Box::new(a), Box::new(b));
            } else {
                return Ok(a);
            }
        }
    }

    fn relational(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.shift()?;
        loop {
            if self.try_punct("<") {
                let b = self.shift()?;
                a = Expr::Binary(VBinary::Lt, Box::new(a), Box::new(b));
            } else if self.try_punct(">") {
                let b = self.shift()?;
                a = Expr::Binary(VBinary::Gt, Box::new(a), Box::new(b));
            } else if self.try_punct(">=") {
                let b = self.shift()?;
                a = Expr::Binary(VBinary::Ge, Box::new(a), Box::new(b));
            } else {
                // note: `<=` is lexed as one token and used for
                // nonblocking assignment; inside expressions it is Le
                return Ok(a);
            }
        }
    }

    fn shift(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.additive()?;
        loop {
            if self.try_punct("<<") {
                let b = self.additive()?;
                a = Expr::Binary(VBinary::Shl, Box::new(a), Box::new(b));
            } else if self.try_punct(">>") {
                let b = self.additive()?;
                a = Expr::Binary(VBinary::Shr, Box::new(a), Box::new(b));
            } else {
                return Ok(a);
            }
        }
    }

    fn additive(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.multiplicative()?;
        loop {
            if self.try_punct("+") {
                let b = self.multiplicative()?;
                a = Expr::Binary(VBinary::Add, Box::new(a), Box::new(b));
            } else if self.try_punct("-") {
                let b = self.multiplicative()?;
                a = Expr::Binary(VBinary::Sub, Box::new(a), Box::new(b));
            } else {
                return Ok(a);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, VerilogError> {
        let mut a = self.unary()?;
        while self.try_punct("*") {
            let b = self.unary()?;
            a = Expr::Binary(VBinary::Mul, Box::new(a), Box::new(b));
        }
        Ok(a)
    }

    fn unary(&mut self) -> Result<Expr, VerilogError> {
        if self.try_punct("!") {
            return Ok(Expr::Unary(VUnary::LogicalNot, Box::new(self.unary()?)));
        }
        if self.try_punct("~") {
            return Ok(Expr::Unary(VUnary::BitNot, Box::new(self.unary()?)));
        }
        if self.try_punct("&") {
            return Ok(Expr::Unary(VUnary::RedAnd, Box::new(self.unary()?)));
        }
        if self.try_punct("|") {
            return Ok(Expr::Unary(VUnary::RedOr, Box::new(self.unary()?)));
        }
        if self.try_punct("^") {
            return Ok(Expr::Unary(VUnary::RedXor, Box::new(self.unary()?)));
        }
        if self.try_punct("-") {
            return Ok(Expr::Unary(VUnary::Neg, Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, VerilogError> {
        match self.peek().cloned() {
            Some(Tok::Number(v)) => {
                self.pos += 1;
                Ok(Expr::Literal { value: v, width: None })
            }
            Some(Tok::Sized(w, v)) => {
                self.pos += 1;
                Ok(Expr::Literal { value: v, width: Some(w) })
            }
            Some(Tok::Punct("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Some(Tok::Punct("{")) => {
                self.pos += 1;
                let mut parts = vec![self.expr()?];
                while self.try_punct(",") {
                    parts.push(self.expr()?);
                }
                self.eat_punct("}")?;
                Ok(Expr::Concat(parts))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.try_punct("[") {
                    let h = self.number()?;
                    if self.try_punct(":") {
                        let l = self.number()?;
                        self.eat_punct("]")?;
                        if l > h {
                            return self.err("part select low > high");
                        }
                        Ok(Expr::PartSelect { base: name, high: h as u32, low: l as u32 })
                    } else {
                        self.eat_punct("]")?;
                        Ok(Expr::BitSelect { base: name, index: h as u32 })
                    }
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => self.err(format!("unexpected expression token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
module tiny(clk, reset, en, q);
  input clk, reset, en;
  output q;
  reg q;
  always @(posedge clk) begin
    if (reset) q <= 1'b0;
    else if (en) q <= ~q;
  end
endmodule
"#;

    #[test]
    fn parse_tiny_module() {
        let d = parse(TINY).unwrap();
        assert_eq!(d.modules.len(), 1);
        let m = &d.modules[0];
        assert_eq!(m.name, "tiny");
        assert_eq!(m.ports, vec!["clk", "reset", "en", "q"]);
        assert_eq!(m.decls.len(), 4, "output q and reg q merge");
        assert_eq!(m.always.len(), 1);
        assert_eq!(m.decl("q").unwrap().kind, NetKind::Reg);
        assert_eq!(m.decl("en").unwrap().dir, Some(PortDir::Input));
    }

    #[test]
    fn ranged_decls_and_assign() {
        let d = parse(
            "module m(a, y);\n input [3:0] a;\n output [3:0] y;\n wire [3:0] t;\n \
             assign t = a + 4'd1;\n assign y = t;\nendmodule",
        )
        .unwrap();
        let m = &d.modules[0];
        assert_eq!(m.decl("a").unwrap().width, 4);
        assert_eq!(m.assigns.len(), 2);
    }

    #[test]
    fn case_statement() {
        let d = parse(
            "module m(clk, s, q);\n input clk;\n input [1:0] s;\n output q;\n reg q;\n \
             always @(posedge clk) begin\n case (s)\n 2'd0: q <= 1'b0;\n 2'd1, 2'd2: q <= 1'b1;\n \
             default: q <= q;\n endcase\n end\nendmodule",
        )
        .unwrap();
        let m = &d.modules[0];
        match &m.always[0].body {
            Stmt::Block(stmts) => match &stmts[0] {
                Stmt::Case { arms, default, .. } => {
                    assert_eq!(arms.len(), 2);
                    assert_eq!(arms[1].0.len(), 2);
                    assert!(default.is_some());
                }
                other => panic!("expected case, got {other:?}"),
            },
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn directive_attaches_inline() {
        let d = parse(
            "module m(clk, rdy, q);\n input clk;\n input rdy; // archval: abstract\n \
             output q;\n reg q;\n always @(posedge clk) q <= rdy;\nendmodule",
        )
        .unwrap();
        let m = &d.modules[0];
        assert_eq!(m.decl("rdy").unwrap().directives, vec![Directive::Abstract { classes: None }]);
    }

    #[test]
    fn directive_attaches_to_next_decl() {
        let d = parse(
            "module m(clk, cls, q);\n input clk;\n // archval: abstract classes=5\n \
             input [2:0] cls;\n output q;\n reg q;\n \
             always @(posedge clk) q <= cls[0];\nendmodule",
        )
        .unwrap();
        let m = &d.modules[0];
        assert_eq!(
            m.decl("cls").unwrap().directives,
            vec![Directive::Abstract { classes: Some(5) }]
        );
        assert!(m.decl("q").unwrap().directives.is_empty());
    }

    #[test]
    fn off_region_is_skipped() {
        let d = parse(
            "module m(clk, q);\n input clk;\n output q;\n reg q;\n \
             // archval: off\n initial q = somejunk # !!! ;\n // archval: on\n \
             always @(posedge clk) q <= ~q;\nendmodule",
        )
        .unwrap();
        assert_eq!(d.modules[0].always.len(), 1);
    }

    #[test]
    fn control_sections_flag_items() {
        let d = parse(
            "module m(clk, q, y);\n input clk;\n output q, y;\n reg q;\n wire y;\n \
             assign y = q;\n // archval: control-begin\n \
             always @(posedge clk) q <= ~q;\n // archval: control-end\nendmodule",
        )
        .unwrap();
        let m = &d.modules[0];
        assert!(!m.assigns[0].in_control, "assign precedes control-begin");
        assert!(m.always[0].in_control);
    }

    #[test]
    fn expression_precedence() {
        let d = parse(
            "module m(a, b, c, y);\n input a, b, c;\n output y;\n \
             assign y = a | b & c;\nendmodule",
        )
        .unwrap();
        // & binds tighter than |
        match &d.modules[0].assigns[0].rhs {
            Expr::Binary(VBinary::BitOr, lhs, _) => {
                assert_eq!(**lhs, Expr::Ident("a".into()));
            }
            other => panic!("wrong tree {other:?}"),
        }
    }

    #[test]
    fn le_in_expression_context() {
        // a <= b inside a ternary's condition parses as Le... the subset
        // resolves <= as assignment only at statement level; expressions
        // use parenthesised comparisons instead. Here we check `>=` works.
        let d = parse(
            "module m(a, b, y);\n input [3:0] a, b;\n output y;\n \
             assign y = a >= b;\nendmodule",
        )
        .unwrap();
        assert!(matches!(&d.modules[0].assigns[0].rhs, Expr::Binary(VBinary::Ge, _, _)));
    }

    #[test]
    fn concat_and_selects() {
        let d = parse(
            "module m(a, y);\n input [7:0] a;\n output [7:0] y;\n \
             assign y = {a[3:0], a[7], 3'b101};\nendmodule",
        )
        .unwrap();
        match &d.modules[0].assigns[0].rhs {
            Expr::Concat(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[0], Expr::PartSelect { .. }));
                assert!(matches!(parts[1], Expr::BitSelect { .. }));
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn initial_rejected_outside_off() {
        assert!(parse("module m(); initial x = 1; endmodule").is_err());
    }

    #[test]
    fn casez_rejected() {
        assert!(parse(
            "module m(s, q); input s; output q; reg q; \
             always @(*) casez (s) default: q = 0; endcase endmodule"
        )
        .is_err());
    }

    #[test]
    fn two_modules_parse() {
        let d = parse("module a(x); input x; endmodule\nmodule b(y); input y; endmodule").unwrap();
        assert_eq!(d.modules.len(), 2);
        assert!(d.module("a").is_some());
        assert!(d.module("b").is_some());
    }
}
