//! Breadth-first explicit-state enumeration.
//!
//! Implements step 2 of the paper's methodology (Figure 3.1): "Synchronous
//! Murphi finds all reachable states of the model by doing breadth-first
//! search starting with the given reset state. As a new state is found, the
//! choice of actions that caused the transition from the current state to
//! the new state becomes the edge of the state graph."

use std::time::{Duration, Instant};

use crate::engine::EngineFactory;
use crate::error::Error;
use crate::graph::{EdgePolicy, GraphBuilder, GraphStats, StateGraph, StateId};
use crate::model::Model;
use crate::pack::{StateLayout, StateTable};
use crate::stats::EnumStats;

/// Configuration for [`enumerate`].
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// Abort with [`Error::StateLimit`] after discovering this many states.
    pub state_limit: usize,
    /// Edge recording policy (see [`EdgePolicy`]).
    pub edge_policy: EdgePolicy,
    /// Optional progress callback, invoked with `(states, edges)` roughly
    /// every `progress_every` states.
    pub progress_every: usize,
    /// Worker threads for [`enumerate_parallel`](crate::parallel::enumerate_parallel);
    /// `1` (the default) runs the sequential enumerator. Ignored by
    /// [`enumerate`].
    pub threads: usize,
    /// Soft resource budget: hitting a bound returns the partial graph
    /// built so far with [`EnumResult::truncated`] set, unlike
    /// `state_limit` which aborts with a hard error. Unbounded by default.
    pub budget: EnumBudget,
    /// Choice permutations evaluated per [`StepEngine::step_batch`] call
    /// during the per-state sweep; `0` or `1` (the default) runs the
    /// scalar [`StepEngine::step_choices`] path unchanged. The result is
    /// bit-identical for every lane count — graph, state ids, stats, and
    /// (for the deterministic bounds) budget truncation points — because
    /// batches are capped so budget checks land on exactly the scalar
    /// path's transition boundaries.
    ///
    /// [`StepEngine::step_batch`]: crate::engine::StepEngine::step_batch
    /// [`StepEngine::step_choices`]: crate::engine::StepEngine::step_choices
    pub batch_lanes: usize,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            state_limit: 10_000_000,
            edge_policy: EdgePolicy::FirstLabel,
            progress_every: usize::MAX,
            threads: 1,
            budget: EnumBudget::default(),
            batch_lanes: 1,
        }
    }
}

/// A soft resource budget for enumeration.
///
/// A budgeted run that hits one of these bounds stops expanding and
/// returns everything discovered so far as a *partial* [`EnumResult`]
/// with [`EnumResult::truncated`] naming the bound that fired; an
/// unbudgeted run behaves exactly as before. This is what lets a
/// fault-injection campaign re-enumerate pathological mutant models —
/// state-space explosions and wedged engines degrade to a truncated
/// partial result instead of unbounded work.
///
/// The bounds are checked per dequeued state (and every few thousand
/// evaluated transitions within a state's choice sweep), so a truncated
/// graph may contain a final source state whose sweep was cut short.
/// States- and transitions-bounded truncations of a *sequential* run are
/// deterministic; deadline truncations and parallel runs stop at a
/// wall-clock- or scheduling-dependent point (the `truncated` marker is
/// still always set).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnumBudget {
    /// Stop once this many states have been discovered.
    pub max_states: Option<usize>,
    /// Stop once this many transitions have been evaluated.
    pub max_transitions: Option<u64>,
    /// Stop once this much wall-clock time has elapsed.
    pub deadline: Option<Duration>,
}

impl EnumBudget {
    /// Whether every bound is absent (the default).
    pub fn is_unbounded(&self) -> bool {
        self.max_states.is_none() && self.max_transitions.is_none() && self.deadline.is_none()
    }

    /// Returns the bound that `states`/`transitions`/elapsed time has
    /// reached, if any. States are checked before transitions before the
    /// deadline, so deterministic truncation reasons win over the
    /// wall-clock one when several fire at once.
    pub(crate) fn check(
        &self,
        states: usize,
        transitions: u64,
        started: Instant,
    ) -> Option<Truncation> {
        if self.max_states.is_some_and(|s| states >= s) {
            return Some(Truncation::States);
        }
        if self.max_transitions.is_some_and(|t| transitions >= t) {
            return Some(Truncation::Transitions);
        }
        if self.deadline.is_some_and(|d| started.elapsed() >= d) {
            return Some(Truncation::Deadline);
        }
        None
    }
}

/// Which [`EnumBudget`] bound cut an enumeration short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truncation {
    /// [`EnumBudget::max_states`] was reached.
    States,
    /// [`EnumBudget::max_transitions`] was reached.
    Transitions,
    /// [`EnumBudget::deadline`] passed.
    Deadline,
}

/// The output of [`enumerate`]: the complete state graph, the interned
/// state table (for decoding state ids back into variable values) and the
/// gathered statistics.
#[derive(Debug)]
pub struct EnumResult {
    /// The complete reachable state graph; state 0 is reset.
    pub graph: StateGraph,
    /// Packed states, decodable via [`StateTable::values`].
    pub table: StateTable,
    /// Table 3.2-shaped statistics.
    pub stats: EnumStats,
    /// Graph-construction metrics from the [`GraphBuilder`].
    pub graph_stats: GraphStats,
    /// `Some` when an [`EnumBudget`] bound stopped the search early; the
    /// graph and table then hold only the states reached before the cut.
    /// Always `None` for unbudgeted runs and loaded snapshots.
    pub truncated: Option<Truncation>,
}

impl EnumResult {
    /// Convenience: unpacks state `s` into per-variable values.
    pub fn state_values(&self, s: StateId) -> Vec<u64> {
        self.table.values(s.0)
    }

    /// Finds the id of the state with the given variable values, if
    /// reachable.
    pub fn find_state(&self, values: &[u64]) -> Option<StateId> {
        self.table.lookup_values(values).map(StateId)
    }

    /// Whether the search ran to completion (no budget bound fired).
    pub fn is_complete(&self) -> bool {
        self.truncated.is_none()
    }
}

/// Enumerates all states reachable from the reset state, permuting every
/// combination of choice-input values at every state.
///
/// # Errors
///
/// Returns [`Error::StateLimit`] if the reachable set exceeds
/// `config.state_limit`, or an evaluation error (division by zero) from a
/// malformed model.
///
/// # Example
///
/// ```
/// use archval_fsm::builder::ModelBuilder;
/// use archval_fsm::enumerate::{enumerate, EnumConfig};
///
/// let mut b = ModelBuilder::new("bit");
/// let set = b.choice("set", 2);
/// let v = b.state_var("v", 2, 0);
/// b.set_next(v, b.choice_expr(set));
/// let m = b.build()?;
/// let r = enumerate(&m, &EnumConfig::default())?;
/// assert_eq!(r.graph.state_count(), 2);
/// assert_eq!(r.graph.edge_count(), 4); // 2 states x 2 successors
/// # Ok::<(), archval_fsm::Error>(())
/// ```
pub fn enumerate(model: &Model, config: &EnumConfig) -> Result<EnumResult, Error> {
    enumerate_with(model, config, model)
}

/// [`enumerate`] with an explicit step-engine factory, so callers can run
/// the search on a compiled engine (see `archval-exec`) instead of the
/// tree-walking default. State ids, graph and labels are engine-invariant
/// as long as the engine is faithful to the model.
///
/// # Errors
///
/// As [`enumerate`].
pub fn enumerate_with(
    model: &Model,
    config: &EnumConfig,
    factory: &dyn EngineFactory,
) -> Result<EnumResult, Error> {
    model.validate()?;
    let start = Instant::now();
    let layout = StateLayout::new(model);
    let bits = layout.total_bits();
    let mut table = StateTable::new(layout);
    let mut builder = GraphBuilder::new(config.edge_policy);
    let mut engine = factory.spawn();

    let n_vars = model.vars().len();
    let n_choices = model.choices().len();
    let choice_sizes: Vec<u64> = model.choices().iter().map(|c| c.size).collect();

    let mut scratch = Vec::new();
    let reset = model.reset_state();
    let (reset_id, _) = table.intern_values(&reset, &mut scratch);
    builder.ensure_state(StateId(reset_id));

    // BFS frontier as a simple cursor: states are discovered in BFS order
    // because ids are assigned in discovery order and we process them in
    // id order.
    let mut cursor: u32 = 0;
    let mut depth_of: Vec<usize> = vec![0];
    let mut max_depth = 0usize;
    let mut transitions: u64 = 0;

    let mut cur_values = vec![0u64; n_vars];
    let mut next_values = vec![0u64; n_vars];
    let mut choices = vec![0u64; n_choices];
    let budgeted = !config.budget.is_unbounded();
    let mut truncated = None;

    // SoA scratch for the batched sweep (empty on the scalar path)
    let lanes_max = config.batch_lanes.max(1);
    let combos: u64 = choice_sizes.iter().product();
    let (mut batch_choices, mut batch_out) = if lanes_max > 1 {
        (vec![0u64; n_choices * lanes_max], vec![0u64; n_vars * lanes_max])
    } else {
        (Vec::new(), Vec::new())
    };
    // The sweep evaluates the identical code sequence 0..combos at every
    // state, so the lane transposition is done once up front. Budgeted
    // runs cap batches at budget-check boundaries instead and fill on
    // the fly (their batch sizes depend on the running transition count).
    let batch_blocks: Vec<(usize, Vec<u64>)> = if lanes_max > 1 && !budgeted {
        let mut blocks = Vec::new();
        let mut code = 0u64;
        while code < combos {
            let n = (combos - code).min(lanes_max as u64) as usize;
            let mut block = vec![0u64; n_choices * n];
            for l in 0..n {
                for (c, &v) in choices.iter().enumerate() {
                    block[c * n + l] = v;
                }
                let mut k = 0;
                while k < n_choices {
                    choices[k] += 1;
                    if choices[k] < choice_sizes[k] {
                        break;
                    }
                    choices[k] = 0;
                    k += 1;
                }
            }
            blocks.push((n, block));
            code += n as u64;
        }
        choices.iter_mut().for_each(|c| *c = 0);
        blocks
    } else {
        Vec::new()
    };

    'search: while (cursor as usize) < table.len() {
        if budgeted {
            truncated = config.budget.check(table.len(), transitions, start);
            if truncated.is_some() {
                break;
            }
        }
        // grow the per-state bookkeeping to the discovered-state count
        // once per source rather than edge by edge inside `add_edge`
        builder.reserve_states(table.len());
        let src = StateId(cursor);
        let src_depth = depth_of[cursor as usize];
        {
            let packed = table.packed(cursor);
            // unpack via a copy because `table` is mutably borrowed below
            let packed: Vec<u64> = packed.to_vec();
            table.layout().unpack(&packed, &mut cur_values);
        }
        // mixed-radix iteration over all choice combinations, all against
        // the state fixed once here (compiled engines reuse their
        // state-only prefix across the whole sweep)
        engine.begin_state(&cur_values)?;
        choices.iter_mut().for_each(|c| *c = 0);
        let mut code: u64 = 0;
        if lanes_max > 1 {
            // batched sweep: same transitions in the same order, evaluated
            // `n` lanes at a time through `step_batch`
            let mut block_ix = 0usize;
            // consecutive permutations usually land on the same successor
            // (most choice bits don't affect the next state); remembering
            // the previous lane's values and id skips the pack + intern
            // for those lanes with identical results — a repeated value is
            // never `fresh`, so no state-limit or depth bookkeeping is
            // skipped with it
            let mut have_prev = false;
            let mut prev_dst = 0u32;
            while code < combos {
                // the scalar path re-checks the budget at every multiple
                // of 4096 evaluated transitions; batches are capped at
                // those boundaries so the checks see identical counts
                if budgeted && transitions.is_multiple_of(4096) {
                    truncated = config.budget.check(table.len(), transitions, start);
                    if truncated.is_some() {
                        break 'search;
                    }
                }
                let (n, block): (usize, &[u64]) = if budgeted {
                    let n = ((combos - code).min(lanes_max as u64) as usize)
                        .min(4096 - (transitions % 4096) as usize);
                    for l in 0..n {
                        for (c, &v) in choices.iter().enumerate() {
                            batch_choices[c * n + l] = v;
                        }
                        let mut k = 0;
                        while k < n_choices {
                            choices[k] += 1;
                            if choices[k] < choice_sizes[k] {
                                break;
                            }
                            choices[k] = 0;
                            k += 1;
                        }
                    }
                    (n, &batch_choices[..n_choices * n])
                } else {
                    let (n, block) = &batch_blocks[block_ix];
                    block_ix += 1;
                    (*n, block.as_slice())
                };
                let step = engine.step_batch(n, block, &mut batch_out[..n_vars * n]);
                // a failing batch still interns the lanes before the
                // failing permutation — exactly what the scalar loop
                // does before surfacing the error
                let ok_lanes = match &step {
                    Ok(()) => n,
                    Err(e) => e.lane,
                };
                for l in 0..ok_lanes {
                    let mut same = have_prev;
                    for (v, slot) in next_values.iter_mut().enumerate() {
                        let val = batch_out[v * n + l];
                        same = same && *slot == val;
                        *slot = val;
                    }
                    transitions += 1;
                    let (dst, fresh) = if same {
                        (prev_dst, false)
                    } else {
                        table.intern_values(&next_values, &mut scratch)
                    };
                    prev_dst = dst;
                    have_prev = true;
                    if fresh {
                        if table.len() > config.state_limit {
                            return Err(Error::StateLimit { limit: config.state_limit });
                        }
                        depth_of.push(src_depth + 1);
                        max_depth = max_depth.max(src_depth + 1);
                        if table.len().is_multiple_of(config.progress_every) {
                            eprintln!(
                                "enumerate: {} states, {} edges",
                                table.len(),
                                builder.edge_count()
                            );
                        }
                    }
                    builder.add_edge(src, StateId(dst), code + l as u64);
                }
                if let Err(e) = step {
                    return Err(e.error);
                }
                code += n as u64;
            }
            cursor += 1;
            continue;
        }
        loop {
            // re-check the budget a few thousand transitions into a long
            // sweep: a model with many choice inputs (or a wedged mutant
            // engine) can burn the whole deadline inside one state
            if budgeted && transitions.is_multiple_of(4096) {
                truncated = config.budget.check(table.len(), transitions, start);
                if truncated.is_some() {
                    break 'search;
                }
            }
            engine.step_choices(&choices, &mut next_values)?;
            transitions += 1;
            let (dst, fresh) = table.intern_values(&next_values, &mut scratch);
            if fresh {
                if table.len() > config.state_limit {
                    return Err(Error::StateLimit { limit: config.state_limit });
                }
                depth_of.push(src_depth + 1);
                max_depth = max_depth.max(src_depth + 1);
                if table.len().is_multiple_of(config.progress_every) {
                    eprintln!("enumerate: {} states, {} edges", table.len(), builder.edge_count());
                }
            }
            builder.add_edge(src, StateId(dst), code);

            // advance mixed-radix counter
            let mut k = 0;
            loop {
                if k == n_choices {
                    break;
                }
                choices[k] += 1;
                if choices[k] < choice_sizes[k] {
                    break;
                }
                choices[k] = 0;
                k += 1;
            }
            code += 1;
            if k == n_choices {
                break;
            }
        }
        cursor += 1;
    }

    let (graph, graph_stats) = builder.finish()?;
    let elapsed = start.elapsed();
    let approx_memory_bytes = table.approx_bytes() + graph_stats.graph_bytes as usize;
    let stats = EnumStats {
        states: table.len(),
        bits_per_state: bits,
        edges: graph.edge_count(),
        elapsed,
        approx_memory_bytes,
        transitions_evaluated: transitions,
        max_depth,
    };
    Ok(EnumResult { graph, table, stats, graph_stats, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::expr::BinaryOp;

    /// A 3-bit counter that only counts when enabled: 8 states, 16 edges.
    fn counter() -> Model {
        let mut b = ModelBuilder::new("cnt");
        let en = b.choice("en", 2);
        let v = b.state_var("c", 8, 0);
        let cur = b.var_expr(v);
        let one = b.constant(1);
        let inc = b.add(cur, one);
        let next = b.ternary(b.choice_expr(en), inc, cur);
        b.set_next(v, next);
        b.build().unwrap()
    }

    #[test]
    fn counter_enumeration_counts() {
        let r = enumerate(&counter(), &EnumConfig::default()).unwrap();
        assert_eq!(r.graph.state_count(), 8);
        // each state: self-loop (en=0) + increment (en=1)
        assert_eq!(r.graph.edge_count(), 16);
        assert_eq!(r.stats.bits_per_state, 3);
        assert_eq!(r.stats.transitions_evaluated, 16);
        assert_eq!(r.stats.max_depth, 7);
        assert!(r.graph.all_reachable_from_reset());
        assert!(r.graph.is_strongly_connected());
    }

    #[test]
    fn reset_state_is_id_zero() {
        let mut b = ModelBuilder::new("m");
        let v = b.state_var("x", 4, 3);
        let cur = b.var_expr(v);
        let one = b.constant(1);
        b.set_next(v, b.binary(BinaryOp::Sub, cur, one));
        let m = b.build().unwrap();
        let r = enumerate(&m, &EnumConfig::default()).unwrap();
        assert_eq!(r.state_values(StateId(0)), vec![3]);
    }

    #[test]
    fn state_limit_enforced() {
        let cfg = EnumConfig { state_limit: 4, ..EnumConfig::default() };
        assert_eq!(enumerate(&counter(), &cfg).unwrap_err(), Error::StateLimit { limit: 4 });
    }

    #[test]
    fn state_budget_truncates_with_partial_graph() {
        let cfg = EnumConfig {
            budget: EnumBudget { max_states: Some(4), ..EnumBudget::default() },
            ..EnumConfig::default()
        };
        let r = enumerate(&counter(), &cfg).unwrap();
        assert_eq!(r.truncated, Some(Truncation::States));
        assert!(!r.is_complete());
        // the partial graph keeps everything discovered before the cut:
        // at least the budgeted states, possibly a frontier successor
        assert!(r.graph.state_count() >= 4);
        assert!(r.graph.state_count() < 8);
        assert!(r.graph.edge_count() > 0);
        // reset is present and decodable
        assert_eq!(r.state_values(StateId(0)), vec![0]);
    }

    #[test]
    fn transition_budget_truncates() {
        let cfg = EnumConfig {
            budget: EnumBudget { max_transitions: Some(6), ..EnumBudget::default() },
            ..EnumConfig::default()
        };
        let r = enumerate(&counter(), &cfg).unwrap();
        assert_eq!(r.truncated, Some(Truncation::Transitions));
        assert!(r.stats.transitions_evaluated >= 6);
        assert!(r.stats.transitions_evaluated < 16);
    }

    #[test]
    fn zero_deadline_truncates_immediately() {
        let cfg = EnumConfig {
            budget: EnumBudget {
                deadline: Some(std::time::Duration::ZERO),
                ..EnumBudget::default()
            },
            ..EnumConfig::default()
        };
        let r = enumerate(&counter(), &cfg).unwrap();
        assert_eq!(r.truncated, Some(Truncation::Deadline));
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let cfg = EnumConfig {
            budget: EnumBudget {
                max_states: Some(1_000),
                max_transitions: Some(1_000_000),
                deadline: Some(std::time::Duration::from_secs(3600)),
            },
            ..EnumConfig::default()
        };
        let budgeted = enumerate(&counter(), &cfg).unwrap();
        let free = enumerate(&counter(), &EnumConfig::default()).unwrap();
        assert!(budgeted.is_complete());
        assert_eq!(budgeted.graph, free.graph);
        assert_eq!(budgeted.stats.transitions_evaluated, free.stats.transitions_evaluated);
    }

    #[test]
    fn states_bound_wins_over_deadline_when_both_fire() {
        let budget = EnumBudget {
            max_states: Some(1),
            deadline: Some(std::time::Duration::ZERO),
            ..EnumBudget::default()
        };
        assert_eq!(budget.check(1, 0, Instant::now()), Some(Truncation::States));
    }

    #[test]
    fn unreachable_states_not_enumerated() {
        // two-bit var that can only toggle its low bit: high bit stays 0
        let mut b = ModelBuilder::new("m");
        let v = b.state_var("x", 4, 0);
        let cur = b.var_expr(v);
        let one = b.constant(1);
        b.set_next(v, b.binary(BinaryOp::BitXor, cur, one));
        let m = b.build().unwrap();
        let r = enumerate(&m, &EnumConfig::default()).unwrap();
        assert_eq!(r.graph.state_count(), 2);
    }

    #[test]
    fn product_of_independent_fsms_multiplies_states() {
        let mut b = ModelBuilder::new("m");
        let c1 = b.choice("c1", 2);
        let c2 = b.choice("c2", 2);
        let a = b.state_var("a", 3, 0);
        let z = b.state_var("z", 5, 0);
        let a_cur = b.var_expr(a);
        let z_cur = b.var_expr(z);
        let one = b.constant(1);
        let three = b.constant(3);
        let five = b.constant(5);
        let a_inc = b.add(a_cur, one);
        let a_wrap = b.modulo(a_inc, three);
        let z_inc = b.add(z_cur, one);
        let z_wrap = b.modulo(z_inc, five);
        let a_next = b.ternary(b.choice_expr(c1), a_wrap, a_cur);
        let z_next = b.ternary(b.choice_expr(c2), z_wrap, z_cur);
        b.set_next(a, a_next);
        b.set_next(z, z_next);
        let m = b.build().unwrap();
        let r = enumerate(&m, &EnumConfig::default()).unwrap();
        assert_eq!(r.graph.state_count(), 15);
        // 4 choice combos per state, successors distinct unless both idle:
        // (0,0) self, (1,0), (0,1), (1,1) -> 4 distinct successors each
        assert_eq!(r.graph.edge_count(), 60);
        assert_eq!(r.stats.transitions_evaluated, 60);
    }

    #[test]
    fn interlocked_fsms_reach_fewer_states() {
        // the paper's observation: mutual stalling prevents the full cross
        // product. Here b only advances when a==0, a only when b==0.
        let mut b = ModelBuilder::new("m");
        let step_a = b.choice("step_a", 2);
        let step_z = b.choice("step_z", 2);
        let a = b.state_var("a", 4, 0);
        let z = b.state_var("z", 4, 0);
        let a_cur = b.var_expr(a);
        let z_cur = b.var_expr(z);
        let one = b.constant(1);
        let four = b.constant(4);
        let a_inc = b.add(a_cur, one);
        let a_wrap = b.modulo(a_inc, four);
        let z_inc = b.add(z_cur, one);
        let z_wrap = b.modulo(z_inc, four);
        let z_zero = b.eq_const(z_cur, 0);
        let a_zero = b.eq_const(a_cur, 0);
        let a_go = b.and(b.choice_expr(step_a), z_zero);
        let z_go = b.and(b.choice_expr(step_z), a_zero);
        let a_next = b.ternary(a_go, a_wrap, a_cur);
        let z_next = b.ternary(z_go, z_wrap, z_cur);
        b.set_next(a, a_next);
        b.set_next(z, z_next);
        let m = b.build().unwrap();
        let r = enumerate(&m, &EnumConfig::default()).unwrap();
        // full product would be 16; the interlock admits only states with
        // a==0 or z==0, plus the simultaneous-start state (1,1): 8 states
        assert_eq!(r.graph.state_count(), 8);
    }

    #[test]
    fn all_labels_policy_records_aliases() {
        // next = 0 regardless of the 2-valued choice: aliased conditions
        let mut b = ModelBuilder::new("m");
        b.choice("c", 2);
        let v = b.state_var("x", 2, 1);
        b.set_next(v, b.constant(0));
        let m = b.build().unwrap();
        let first = enumerate(
            &m,
            &EnumConfig { edge_policy: EdgePolicy::FirstLabel, ..EnumConfig::default() },
        )
        .unwrap();
        let all = enumerate(
            &m,
            &EnumConfig { edge_policy: EdgePolicy::AllLabels, ..EnumConfig::default() },
        )
        .unwrap();
        assert_eq!(first.graph.edge_count(), 2); // 1->0 once, 0->0 once
        assert_eq!(all.graph.edge_count(), 4); // both labels kept on each arc
    }

    #[test]
    fn find_state_distinguishes_reachable() {
        let r = enumerate(&counter(), &EnumConfig::default()).unwrap();
        assert_eq!(r.find_state(&[5]), Some(StateId(5)));
        // domain is 8 so every value is reachable; a model where it isn't:
        let mut b = ModelBuilder::new("m");
        let v = b.state_var("x", 4, 0);
        b.set_next(v, b.constant(0));
        let m = b.build().unwrap();
        let r2 = enumerate(&m, &EnumConfig::default()).unwrap();
        assert_eq!(r2.find_state(&[0]), Some(StateId(0)));
        assert_eq!(r2.find_state(&[3]), None);
    }
}
