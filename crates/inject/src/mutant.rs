//! Mutant generation: which faults a campaign injects.

use archval_exec::{program_mutation_sites, ProgramMutation, StepProgram};
use archval_fsm::{mutation_sites, Model, ModelMutation};

/// The three adversarial engines every default campaign carries; see
/// [`crate::chaos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosKind {
    /// Reachable set is the full variable cross product.
    Explode,
    /// Sleeps on every dequeued state.
    Wedge,
    /// Panics on the first evaluated transition.
    Panic,
}

impl ChaosKind {
    /// Stable label fragment.
    fn name(self) -> &'static str {
        match self {
            ChaosKind::Explode => "explode",
            ChaosKind::Wedge => "wedge",
            ChaosKind::Panic => "panic",
        }
    }
}

/// One mutant a campaign will run: a fault plus the layer it lives in.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MutantSpec {
    /// A model-level fault (applied before lowering; runs on the mutant
    /// model's own engines).
    Model(ModelMutation),
    /// A bytecode-level fault (applied to the compiled reference program;
    /// runs on a [`CompiledEngine`](archval_exec::CompiledEngine) over the
    /// mutant program).
    Program(ProgramMutation),
    /// An adversarial engine exercising the campaign's isolation paths.
    Chaos(ChaosKind),
}

impl MutantSpec {
    /// A short, stable label, unique within one generated mutant list.
    pub fn label(&self) -> String {
        match self {
            MutantSpec::Model(m) => format!("model:{}", m.label()),
            MutantSpec::Program(p) => format!("program:{}", p.label()),
            MutantSpec::Chaos(k) => format!("chaos:{}", k.name()),
        }
    }

    /// The fault family, for the report's per-family breakdown.
    pub fn family(&self) -> &'static str {
        match self {
            MutantSpec::Model(_) => "model",
            MutantSpec::Program(_) => "program",
            MutantSpec::Chaos(_) => "chaos",
        }
    }
}

/// Selects the campaign's mutant list, deterministically.
///
/// Model-level and bytecode-level sites are interleaved (alternating
/// family, each family in its own deterministic site order) so a
/// truncated list still spans both layers, then capped at `limit` minus
/// the chaos slots; when `include_chaos` is set the three chaos mutants
/// are appended last. The same `(model, program, limit, include_chaos)`
/// always yields the same list — campaign checkpoints re-derive it on
/// resume and verify labels line up.
pub fn generate_mutants(
    model: &Model,
    program: &StepProgram,
    limit: usize,
    include_chaos: bool,
) -> Vec<MutantSpec> {
    let chaos: &[ChaosKind] =
        if include_chaos { &[ChaosKind::Explode, ChaosKind::Wedge, ChaosKind::Panic] } else { &[] };
    let budget = limit.saturating_sub(chaos.len());

    let model_sites = mutation_sites(model);
    let program_sites = program_mutation_sites(program);
    let mut out = Vec::with_capacity(limit.min(model_sites.len() + program_sites.len()));
    let mut models = model_sites.into_iter();
    let mut programs = program_sites.into_iter();
    while out.len() < budget {
        match (models.next(), programs.next()) {
            (Some(m), Some(p)) => {
                out.push(MutantSpec::Model(m));
                if out.len() < budget {
                    out.push(MutantSpec::Program(p));
                }
            }
            (Some(m), None) => out.push(MutantSpec::Model(m)),
            (None, Some(p)) => out.push(MutantSpec::Program(p)),
            (None, None) => break,
        }
    }
    out.extend(chaos.iter().map(|&k| MutantSpec::Chaos(k)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use archval_fsm::builder::ModelBuilder;

    fn counter() -> Model {
        let mut b = ModelBuilder::new("counter");
        let en = b.choice("enable", 2);
        let count = b.state_var("count", 4, 0);
        let cur = b.var_expr(count);
        let bumped = b.add(cur, b.constant(1));
        let wrapped = b.modulo(bumped, b.constant(4));
        let next = b.ternary(b.choice_expr(en), wrapped, cur);
        b.set_next(count, next);
        b.build().unwrap()
    }

    #[test]
    fn generation_is_deterministic_and_mixed() {
        let m = counter();
        let p = StepProgram::compile(&m);
        let a = generate_mutants(&m, &p, 12, true);
        let b = generate_mutants(&m, &p, 12, true);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.iter().any(|s| s.family() == "model"));
        assert!(a.iter().any(|s| s.family() == "program"));
        assert_eq!(a.iter().filter(|s| s.family() == "chaos").count(), 3);
        // chaos occupies the tail
        assert_eq!(a[9], MutantSpec::Chaos(ChaosKind::Explode));
        assert_eq!(a[11], MutantSpec::Chaos(ChaosKind::Panic));
    }

    #[test]
    fn labels_are_unique() {
        let m = counter();
        let p = StepProgram::compile(&m);
        let specs = generate_mutants(&m, &p, 64, true);
        let labels: std::collections::HashSet<String> =
            specs.iter().map(MutantSpec::label).collect();
        assert_eq!(labels.len(), specs.len());
    }

    #[test]
    fn chaos_can_be_disabled() {
        let m = counter();
        let p = StepProgram::compile(&m);
        let specs = generate_mutants(&m, &p, 8, false);
        assert!(specs.iter().all(|s| s.family() != "chaos"));
        assert_eq!(specs.len(), 8);
    }

    #[test]
    fn limit_larger_than_site_count_is_exhaustive() {
        let m = counter();
        let p = StepProgram::compile(&m);
        let specs = generate_mutants(&m, &p, 10_000, false);
        let total = mutation_sites(&m).len() + program_mutation_sites(&p).len();
        assert_eq!(specs.len(), total);
    }
}
