//! Dumps the PP control artefacts at a given scale: the generated
//! annotated Verilog, and its translation rendered in the
//! Synchronous-Murphi-flavoured model language.
//!
//! ```sh
//! cargo run --release -p archval-bench --bin dump-pp-model standard
//! ```

use archval_bench::{scale_from_args, BenchError};
use archval_fsm::dump_model;
use archval_pp::{pp_control_model, pp_control_verilog};

fn main() {
    archval_bench::run("dump-pp-model", || {
        let scale = scale_from_args();
        println!("// ======== annotated Verilog (translator input) ========\n");
        println!("{}", pp_control_verilog(&scale));
        let model = pp_control_model(&scale).map_err(BenchError::from)?;
        println!("\n-- ======== translated FSM model (enumerator input) ========\n");
        println!("{}", dump_model(&model));
        Ok(())
    });
}
