//! Error type for model construction, evaluation and enumeration.

use std::fmt;

/// Errors produced while building, evaluating or enumerating a [`Model`].
///
/// [`Model`]: crate::model::Model
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A state variable was declared without a next-state expression.
    MissingNext {
        /// Name of the offending state variable.
        var: String,
    },
    /// A domain size of zero or one was requested where at least two values
    /// are required, or a size too large to encode.
    BadDomain {
        /// Name of the variable or choice input.
        name: String,
        /// The rejected size.
        size: u64,
    },
    /// An initial value lies outside its variable's domain.
    BadInit {
        /// Name of the state variable.
        var: String,
        /// The rejected initial value.
        value: u64,
        /// The domain size it must be less than.
        size: u64,
    },
    /// A name was declared twice.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A definition refers to itself, directly or transitively.
    CombinationalCycle {
        /// Name of a definition on the cycle.
        def: String,
    },
    /// An expression referenced an id that does not exist in the model.
    DanglingReference {
        /// Human-readable description of the bad reference.
        what: String,
    },
    /// The enumeration exceeded its configured state limit.
    StateLimit {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// The model declares no state variables.
    EmptyModel,
    /// Division or modulo by a divisor that can be zero.
    DivisionByZero,
    /// The enumerated graph exceeded the CSR index range (more than
    /// `u32::MAX` states or edges).
    Graph(archval_graph::GraphError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MissingNext { var } => {
                write!(f, "state variable `{var}` has no next-state expression")
            }
            Error::BadDomain { name, size } => {
                write!(f, "domain size {size} for `{name}` is not in 2..=2^32")
            }
            Error::BadInit { var, value, size } => {
                write!(f, "initial value {value} for `{var}` is outside its domain of size {size}")
            }
            Error::DuplicateName { name } => write!(f, "name `{name}` declared twice"),
            Error::CombinationalCycle { def } => {
                write!(f, "combinational cycle through definition `{def}`")
            }
            Error::DanglingReference { what } => write!(f, "dangling reference: {what}"),
            Error::StateLimit { limit } => {
                write!(f, "state enumeration exceeded the limit of {limit} states")
            }
            Error::EmptyModel => write!(f, "model has no state variables"),
            Error::DivisionByZero => write!(f, "division or modulo by zero"),
            Error::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<archval_graph::GraphError> for Error {
    fn from(e: archval_graph::GraphError) -> Self {
        Error::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::MissingNext { var: "stall".into() };
        let s = e.to_string();
        assert!(s.contains("stall"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
