//! The step-engine abstraction: pluggable implementations of one clock
//! cycle of a [`Model`].
//!
//! Every execution layer — the sequential and frontier-parallel
//! enumerators, tour/fuzz replay through [`SyncSim`](crate::sim::SyncSim)
//! and the sim-campaign baselines — advances a model one cycle at a time.
//! [`StepEngine`] is that cycle, split in two to match the enumerator's
//! access pattern:
//!
//! * [`begin_state`](StepEngine::begin_state) fixes the *current state*.
//!   An engine may do per-state work here exactly once — the compiled
//!   engine in `archval-exec` evaluates its state-only instruction
//!   prefix — because the enumerator sweeps **every choice combination
//!   against the same state** before moving on;
//! * [`step_choices`](StepEngine::step_choices) produces the successor
//!   state for one choice assignment against the fixed state.
//!
//! [`EngineFactory`] mints per-worker engine instances so parallel layers
//! can give each thread its own scratch space while sharing the
//! read-only compiled form. The factory is the seam between crates: this
//! crate implements it for [`Model`] (the tree-walking [`Evaluator`]
//! oracle) and `archval-exec` implements it for its compiled
//! `StepProgram`, so enumeration, fuzzing and simulation are written once
//! against the trait and run bit-identically under either engine.

use crate::error::Error;
use crate::eval::Evaluator;
use crate::model::Model;

/// A failure inside a batched step: which lane failed and why.
///
/// Lanes are executed in choice-code order, so `lane` is the offset of
/// the *first* permutation in the batch whose scalar evaluation would
/// have failed — output lanes before it still hold valid successors,
/// which is what lets a batched enumerator reproduce the scalar
/// enumerator's behaviour exactly (intern everything up to the failing
/// permutation, then surface its error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// Offset of the first failing lane within the batch.
    pub lane: usize,
    /// The failure the scalar engine would have reported for that lane.
    pub error: Error,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lane {}: {}", self.lane, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One clock cycle of a [`Model`], split into a per-state and a
/// per-choice phase.
///
/// Implementations must be *pure* with respect to `(state, choices)`:
/// for the same inputs they produce the same successor (or the same
/// error), regardless of call history. That purity is what makes engines
/// interchangeable — the differential suites assert tree/compiled
/// bit-identity through every layer.
pub trait StepEngine: std::fmt::Debug {
    /// Fixes the current state for subsequent [`step_choices`] calls,
    /// performing any per-state precomputation.
    ///
    /// # Errors
    ///
    /// Engines that evaluate state-only logic here may report evaluation
    /// failures; the tree engine never fails in this phase.
    ///
    /// [`step_choices`]: StepEngine::step_choices
    fn begin_state(&mut self, state: &[u64]) -> Result<(), Error>;

    /// Evaluates the successor of the fixed state under `choices`,
    /// writing one value per state variable into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] when a demanded `Mod` evaluates
    /// with a zero divisor — bit-for-bit the tree walker's behaviour.
    fn step_choices(&mut self, choices: &[u64], out: &mut [u64]) -> Result<(), Error>;

    /// Convenience: one full `(state, choices) -> successor` step.
    ///
    /// # Errors
    ///
    /// As [`begin_state`](StepEngine::begin_state) and
    /// [`step_choices`](StepEngine::step_choices).
    fn step(&mut self, state: &[u64], choices: &[u64], out: &mut [u64]) -> Result<(), Error> {
        self.begin_state(state)?;
        self.step_choices(choices, out)
    }

    /// Evaluates `lanes` choice permutations against the fixed state in
    /// one call, in structure-of-arrays form: `choices[c * lanes + l]`
    /// holds choice `c` of lane `l` and the successor of lane `l` is
    /// written to `out[v * lanes + l]` for every state variable `v`.
    ///
    /// Lane `l` must produce exactly the values (and exactly the error)
    /// that [`step_choices`](StepEngine::step_choices) produces for the
    /// same permutation — the default implementation *is* that scalar
    /// loop, so engines without a vectorised path (the tree walker, the
    /// chaos engines) stay correct unchanged. The compiled engine in
    /// `archval-exec` overrides this with an SoA interpreter that
    /// executes each suffix instruction once across all lanes.
    ///
    /// # Errors
    ///
    /// Returns a [`BatchError`] naming the first failing lane in
    /// choice-code order; output lanes before it are still valid.
    fn step_batch(
        &mut self,
        lanes: usize,
        choices: &[u64],
        out: &mut [u64],
    ) -> Result<(), BatchError> {
        if lanes == 0 {
            return Ok(());
        }
        let n_choices = choices.len() / lanes;
        let n_vars = out.len() / lanes;
        let mut ch = vec![0u64; n_choices];
        let mut vals = vec![0u64; n_vars];
        for l in 0..lanes {
            for (c, slot) in ch.iter_mut().enumerate() {
                *slot = choices[c * lanes + l];
            }
            self.step_choices(&ch, &mut vals).map_err(|error| BatchError { lane: l, error })?;
            for (v, &val) in vals.iter().enumerate() {
                out[v * lanes + l] = val;
            }
        }
        Ok(())
    }
}

/// Mints [`StepEngine`] instances — one per worker thread — over some
/// shared read-only compiled form of a model.
pub trait EngineFactory: Sync + std::fmt::Debug {
    /// Creates a fresh engine with its own mutable scratch space.
    fn spawn(&self) -> Box<dyn StepEngine + '_>;
}

/// The reference engine: a [`Evaluator`] tree walk per step.
///
/// `begin_state` merely latches the state (the tree walker has no
/// per-state precomputation to reuse); `step_choices` re-walks the
/// expression DAG with the evaluator's generation-validated memo.
#[derive(Debug)]
pub struct TreeEngine<'m> {
    eval: Evaluator<'m>,
    state: Vec<u64>,
}

impl<'m> TreeEngine<'m> {
    /// Creates a tree engine for `model`.
    pub fn new(model: &'m Model) -> Self {
        TreeEngine { eval: Evaluator::new(model), state: vec![0; model.vars().len()] }
    }
}

impl StepEngine for TreeEngine<'_> {
    fn begin_state(&mut self, state: &[u64]) -> Result<(), Error> {
        self.state.copy_from_slice(state);
        Ok(())
    }

    fn step_choices(&mut self, choices: &[u64], out: &mut [u64]) -> Result<(), Error> {
        self.eval.next_state(&self.state, choices, out)
    }

    fn step(&mut self, state: &[u64], choices: &[u64], out: &mut [u64]) -> Result<(), Error> {
        // skip the begin_state latch copy on the single-step path
        self.eval.next_state(state, choices, out)
    }
}

/// A [`Model`] is its own engine factory, spawning tree walkers — the
/// differential oracle every other engine is checked against.
impl EngineFactory for Model {
    fn spawn(&self) -> Box<dyn StepEngine + '_> {
        Box::new(TreeEngine::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;

    fn counter() -> Model {
        let mut b = ModelBuilder::new("cnt");
        let en = b.choice("en", 2);
        let v = b.state_var("c", 8, 0);
        let cur = b.var_expr(v);
        let one = b.constant(1);
        let inc = b.add(cur, one);
        let next = b.ternary(b.choice_expr(en), inc, cur);
        b.set_next(v, next);
        b.build().unwrap()
    }

    #[test]
    fn tree_engine_matches_direct_evaluation() {
        let m = counter();
        let mut engine = m.spawn();
        let mut eval = Evaluator::new(&m);
        let mut a = [0u64];
        let mut b = [0u64];
        for state in 0..8u64 {
            engine.begin_state(&[state]).unwrap();
            for choice in 0..2u64 {
                engine.step_choices(&[choice], &mut a).unwrap();
                eval.next_state(&[state], &[choice], &mut b).unwrap();
                assert_eq!(a, b, "state {state} choice {choice}");
            }
        }
    }

    #[test]
    fn single_step_path_agrees_with_split_path() {
        let m = counter();
        let mut engine = m.spawn();
        let mut a = [0u64];
        let mut b = [0u64];
        engine.step(&[3], &[1], &mut a).unwrap();
        engine.begin_state(&[3]).unwrap();
        engine.step_choices(&[1], &mut b).unwrap();
        assert_eq!(a, b);
    }
}
