//! The Stanford FLASH Protocol Processor analogue.
//!
//! This crate is the device under validation for the reproduction of
//! "Architecture Validation for Processors" (ISCA 1995). It provides, from
//! scratch:
//!
//! * the PP's DLX-flavoured ISA with the MAGIC `switch`/`send`
//!   communication instructions ([`isa`]) and the five control-visible
//!   instruction classes of the paper's Table 3.1;
//! * an assembler/disassembler ([`asm`]);
//! * the control logic ([`control`]) — stall machine, I-/D-cache refill
//!   FSMs, fill/spill tracking and split-store conflict FSM of Figure 3.2;
//! * a generator emitting the same control logic as annotated Verilog
//!   ([`verilog_gen`]) plus its translation to an FSM model
//!   ([`fsm_model`]), the paper's extraction flow;
//! * an instruction-level reference simulator — the paper's *executable
//!   specification* ([`ref_sim`]);
//! * a cycle-accurate RTL simulator with a 2-way set-associative data cache
//!   (fill-before-spill, spill buffer, critical-word-first restart, split
//!   stores), an instruction cache, Inbox/Outbox interfaces and a shared
//!   memory port ([`rtl`]);
//! * the six injectable bugs of the paper's Table 2.1 ([`bugs`]);
//! * a declarative design-description layer ([`design`]) that promotes the
//!   device under validation to a generated *family* of configurations,
//!   with the historical [`PpScale`] presets as its legacy sub-family;
//! * shared test/bench support ([`testkit`]) building models from specs or
//!   preset names without re-spelling the translation pipeline.

pub mod asm;
pub mod bugs;
pub mod config;
pub mod control;
pub mod design;
pub mod fsm_model;
pub mod isa;
pub mod mem;
pub mod ref_sim;
pub mod rtl;
pub mod testkit;
pub mod verilog_gen;

pub use bugs::{Bug, BugSet};
pub use config::PpScale;
pub use control::{CtrlIn, CtrlSignals, CtrlState};
pub use design::{
    presets, resolve_preset, ClassSet, DesignError, DesignSpec, FamilyAxes, FillPolicy,
};
pub use fsm_model::pp_control_model;
pub use isa::{Instr, InstrClass, Reg};
pub use ref_sim::RefSim;
pub use rtl::RtlSim;
pub use verilog_gen::pp_control_verilog;
