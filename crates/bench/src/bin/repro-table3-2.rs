//! Regenerates Table 3.2: state-enumeration statistics of the PP control
//! model, paper column alongside. With a thread count > 1 (second
//! argument or `ARCHVAL_THREADS`) it runs both the sequential and the
//! frontier-parallel enumerator, checks they agree, and reports both
//! timings.

use archval_bench::{header, row, scale_from_args, threads_from_args};
use archval_fsm::{enumerate, enumerate_parallel, EnumConfig};
use archval_pp::pp_control_model;

fn main() {
    let scale = scale_from_args();
    let threads = threads_from_args();
    eprintln!("enumerating at {scale:?} ... (use `paper` for the near-paper-scale run)");
    let model = pp_control_model(&scale).expect("control model builds");
    let r = enumerate(&model, &EnumConfig::default()).expect("enumeration");

    header(&format!("Table 3.2 — State Enumeration Statistics ({scale:?})"));
    row("Number of States", "229,571", &r.stats.states.to_string());
    row("Number of bits per State", "98", &r.stats.bits_per_state.to_string());
    row(
        "Execution Time",
        "18,307 cpu secs (DS5000/240)",
        &format!("{:.1} s", r.stats.elapsed.as_secs_f64()),
    );
    row(
        "Memory Requirement",
        "34 MB",
        &format!("{:.1} MB", r.stats.approx_memory_bytes as f64 / 1048576.0),
    );
    row("Number of Edges in State Graph", "1,172,848", &r.stats.edges.to_string());
    println!(
        "\nshape check: reachable states are 2^{:.1} out of 2^{} possible — the paper's \n\
         interlocked-FSM pruning (theirs: 2^17.8 out of 2^98).",
        (r.stats.states as f64).log2(),
        r.stats.bits_per_state
    );
    println!(
        "transitions evaluated: {} (every choice combination at every state)",
        r.stats.transitions_evaluated
    );

    if threads > 1 {
        eprintln!("re-enumerating with {threads} worker threads ...");
        let cfg = EnumConfig { threads, ..EnumConfig::default() };
        let p = enumerate_parallel(&model, &cfg).expect("parallel enumeration");
        assert_eq!(p.stats.states, r.stats.states, "state count diverged");
        assert_eq!(p.stats.edges, r.stats.edges, "edge count diverged");
        let seq = r.stats.elapsed.as_secs_f64();
        let par = p.stats.elapsed.as_secs_f64();
        println!(
            "\nparallel enumeration ({threads} threads): {par:.1} s vs {seq:.1} s sequential \
             ({:.2}x speedup), identical graph",
            seq / par
        );
    }
}
