//! The fuzzing corpus: retained input sequences with admission metadata
//! and selection energy.
//!
//! Entries are admitted when their replay covered something no earlier
//! entry covered (the feedback map's novelty signal). Selection is
//! energy-weighted: the [`crate::schedule::PowerSchedule`] assigns fresh
//! discoverers high energy and decays everyone each round, so mutation
//! pressure follows the coverage frontier. All mutation happens against
//! immutable snapshots (`&Corpus`); admission and decay run only in the
//! engine's sequential merge phase, keeping parallel runs deterministic.

use serde::{Deserialize, Serialize};

use crate::Seq;

/// One retained input sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// The retained choice-code sequence.
    pub seq: Seq,
    /// The model state `seq` ends in. The model is deterministic, so this
    /// checkpoint stands in for replaying `seq` — extension candidates
    /// resume from here and only spend the cycles they add.
    pub end_state: Vec<u64>,
    /// Coverage features this entry newly covered when admitted.
    pub novelty: usize,
    /// Engine round at which the entry was admitted (round 0 holds the
    /// initial seeds).
    pub round: u64,
    /// Selection energy; maintained by the power schedule.
    pub energy: f64,
    /// Times this entry has parented an executed extension since it was
    /// admitted (or last rebased). The engine gives a checkpoint's first
    /// child a long exploration tail and later children short milking
    /// tails — repeat extensions from one state mostly re-cover the
    /// neighbourhood the first one already walked.
    pub uses: u64,
}

impl CorpusEntry {
    /// Cycles in the retained sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether the sequence is empty (never true for admitted entries).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// The ordered set of retained entries.
///
/// Order is admission order and never changes, which makes energy-weighted
/// selection a deterministic function of `(corpus, random unit draw)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been admitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in admission order.
    #[must_use]
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Admits an entry (appended; order-stable).
    pub fn add(&mut self, entry: CorpusEntry) {
        self.entries.push(entry);
    }

    /// Total selection energy.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.entries.iter().map(|e| e.energy).sum()
    }

    /// Selects an entry by energy-weighted roulette. `unit` must be in
    /// `[0, 1)`; equal units always select the same entry for the same
    /// corpus state.
    ///
    /// Returns `None` on an empty corpus.
    #[must_use]
    pub fn select(&self, unit: f64) -> Option<&CorpusEntry> {
        self.select_ix(unit).map(|ix| &self.entries[ix])
    }

    /// [`Corpus::select`], returning the entry's stable index (entries are
    /// append-only, so an index stays valid across later admissions).
    #[must_use]
    pub fn select_ix(&self, unit: f64) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let total = self.total_energy();
        if total <= 0.0 {
            // degenerate (all energies decayed to zero): uniform pick
            return Some(((unit * self.entries.len() as f64) as usize).min(self.entries.len() - 1));
        }
        let mut remaining = unit * total;
        for (ix, e) in self.entries.iter().enumerate() {
            if remaining < e.energy {
                return Some(ix);
            }
            remaining -= e.energy;
        }
        Some(self.entries.len() - 1)
    }

    /// Applies one round of multiplicative energy decay, clamped at
    /// `floor` so old entries keep a nonzero selection chance.
    pub fn decay(&mut self, factor: f64, floor: f64) {
        for e in &mut self.entries {
            e.energy = (e.energy * factor).max(floor);
        }
    }

    /// Cools one entry's energy (clamped at `floor`) — applied to a
    /// parent each time a child of it executes, so repeatedly-extended
    /// entries stop monopolising selection and the frontier moves on.
    pub fn cool(&mut self, ix: usize, factor: f64, floor: f64) {
        let e = &mut self.entries[ix];
        e.energy = (e.energy * factor).max(floor);
    }

    /// Adds selection energy to one entry — the schedule's reward when an
    /// entry's walk keeps discovering.
    pub fn energize(&mut self, ix: usize, add: f64) {
        self.entries[ix].energy += add;
    }

    /// Replaces an entry's sequence and checkpoint in place. The engine
    /// uses this to advance a walk head past a zero-novelty tail: the
    /// cycles are spent either way, so the walk continues from where the
    /// tail ended instead of rolling back to the old checkpoint. Energy
    /// and admission metadata are kept; the use count resets because the
    /// new head's neighbourhood is unexplored.
    pub fn rebase(&mut self, ix: usize, seq: Seq, end_state: Vec<u64>) {
        let e = &mut self.entries[ix];
        e.seq = seq;
        e.end_state = end_state;
        e.uses = 0;
    }

    /// Records one executed extension parented by entry `ix`.
    pub fn mark_used(&mut self, ix: usize) {
        self.entries[ix].uses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: Seq, energy: f64) -> CorpusEntry {
        CorpusEntry { seq, end_state: vec![0], novelty: 1, round: 0, energy, uses: 0 }
    }

    #[test]
    fn select_is_energy_weighted_and_deterministic() {
        let mut c = Corpus::new();
        c.add(entry(vec![0], 1.0));
        c.add(entry(vec![1], 3.0));
        // total 4.0: units below 0.25 hit entry 0, above hit entry 1
        assert_eq!(c.select(0.1).unwrap().seq, vec![0]);
        assert_eq!(c.select(0.24).unwrap().seq, vec![0]);
        assert_eq!(c.select(0.26).unwrap().seq, vec![1]);
        assert_eq!(c.select(0.99).unwrap().seq, vec![1]);
        assert_eq!(c.select(0.5).unwrap().seq, c.select(0.5).unwrap().seq);
    }

    #[test]
    fn select_empty_is_none() {
        assert!(Corpus::new().select(0.5).is_none());
    }

    #[test]
    fn zero_energy_falls_back_to_uniform() {
        let mut c = Corpus::new();
        c.add(entry(vec![0], 0.0));
        c.add(entry(vec![1], 0.0));
        assert_eq!(c.select(0.1).unwrap().seq, vec![0]);
        assert_eq!(c.select(0.9).unwrap().seq, vec![1]);
    }

    #[test]
    fn decay_clamps_at_floor() {
        let mut c = Corpus::new();
        c.add(entry(vec![0], 8.0));
        c.decay(0.5, 3.0);
        assert!((c.entries()[0].energy - 4.0).abs() < 1e-9);
        c.decay(0.5, 3.0);
        assert!((c.entries()[0].energy - 3.0).abs() < 1e-9);
    }
}
