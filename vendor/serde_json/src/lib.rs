//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! stand-in's JSON-direct traits.

use std::fmt;

pub use serde::de::Error;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(indent(&compact))
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing characters.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = serde::de::Parser::new(s);
    let v = T::deserialize_json(&mut p)?;
    p.finish()?;
    Ok(v)
}

/// Re-indents compact JSON. Strings are already escape-encoded, so the
/// only subtlety is not re-formatting inside string literals.
fn indent(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    out.push(chars.next().unwrap());
                } else {
                    depth += 1;
                    newline(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            other => out.push(other),
        }
    }
    out
}

/// Formats any serializable value for display (convenience used by repro
/// binaries; not part of the real serde_json API surface we mirror, but
/// harmless).
pub fn display<T: serde::Serialize>(value: &T) -> impl fmt::Display {
    to_string_pretty(value).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_vec() {
        let v = vec![(1u64, 2usize), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(u64, usize)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_preserves_strings() {
        let v = vec![String::from("a{b,c}")];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("a{b,c}"));
        let back: Vec<String> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u64>("5 x").is_err());
    }
}
