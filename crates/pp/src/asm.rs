//! A small assembler and disassembler for the PP ISA.
//!
//! Supports one instruction per line, `;`-or-`#` comments, and the
//! mnemonics `add sub and or xor sltu sll srl addi andi ori xori sltiu lui
//! lw sw switch send nop halt`.

use std::fmt;

use crate::isa::{AluOp, Instr, Reg};

/// An assembly error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let body = s
        .trim()
        .strip_prefix('r')
        .ok_or_else(|| AsmError { line, msg: format!("expected register, got `{s}`") })?;
    let n: u8 = body.parse().map_err(|_| AsmError { line, msg: format!("bad register `{s}`") })?;
    if n > 31 {
        return Err(AsmError { line, msg: format!("register r{n} out of range") });
    }
    Ok(Reg(n))
}

fn parse_imm(s: &str, line: usize) -> Result<u16, AsmError> {
    let s = s.trim();
    let v: i64 = if let Some(hex) = s.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
            .map_err(|_| AsmError { line, msg: format!("bad immediate `{s}`") })?
    } else {
        s.parse().map_err(|_| AsmError { line, msg: format!("bad immediate `{s}`") })?
    };
    if !(-32768..=65535).contains(&v) {
        return Err(AsmError { line, msg: format!("immediate `{s}` out of 16-bit range") });
    }
    Ok((v as i32 as u32 & 0xFFFF) as u16)
}

/// Assembles a program; returns one instruction per non-empty line.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered.
///
/// # Example
///
/// ```
/// use archval_pp::asm::assemble;
///
/// let prog = assemble("addi r1, r0, 5\nsw r1, 0(r2)\nhalt")?;
/// assert_eq!(prog.len(), 3);
/// # Ok::<(), archval_pp::asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<Vec<Instr>, AsmError> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        out.push(parse_line(text, line)?);
    }
    Ok(out)
}

fn parse_line(text: &str, line: usize) -> Result<Instr, AsmError> {
    let (mn, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let args: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let need = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(AsmError { line, msg: format!("`{mn}` takes {n} operands, got {}", args.len()) })
        }
    };
    let rrr = |op: AluOp| -> Result<Instr, AsmError> {
        need(3)?;
        Ok(Instr::Alu {
            op,
            rd: parse_reg(args[0], line)?,
            rs: parse_reg(args[1], line)?,
            rt: parse_reg(args[2], line)?,
        })
    };
    let rri = |op: AluOp| -> Result<Instr, AsmError> {
        need(3)?;
        Ok(Instr::AluImm {
            op,
            rd: parse_reg(args[0], line)?,
            rs: parse_reg(args[1], line)?,
            imm: parse_imm(args[2], line)?,
        })
    };
    // `lw r1, 4(r2)` / `sw r1, 4(r2)`
    let mem = |s: &str| -> Result<(Reg, u16), AsmError> {
        let open = s
            .find('(')
            .ok_or_else(|| AsmError { line, msg: format!("expected `imm(reg)`, got `{s}`") })?;
        let close =
            s.find(')').ok_or_else(|| AsmError { line, msg: format!("missing `)` in `{s}`") })?;
        let imm = parse_imm(&s[..open], line)?;
        let base = parse_reg(&s[open + 1..close], line)?;
        Ok((base, imm))
    };
    match mn {
        "add" => rrr(AluOp::Add),
        "sub" => rrr(AluOp::Sub),
        "and" => rrr(AluOp::And),
        "or" => rrr(AluOp::Or),
        "xor" => rrr(AluOp::Xor),
        "sltu" => rrr(AluOp::Sltu),
        "sll" => rrr(AluOp::Sll),
        "srl" => rrr(AluOp::Srl),
        "addi" => rri(AluOp::Add),
        "andi" => rri(AluOp::And),
        "ori" => rri(AluOp::Or),
        "xori" => rri(AluOp::Xor),
        "sltiu" => rri(AluOp::Sltu),
        "lui" => {
            need(2)?;
            Ok(Instr::Lui { rd: parse_reg(args[0], line)?, imm: parse_imm(args[1], line)? })
        }
        "lw" => {
            need(2)?;
            let (rs, imm) = mem(args[1])?;
            Ok(Instr::Lw { rd: parse_reg(args[0], line)?, rs, imm })
        }
        "sw" => {
            need(2)?;
            let (rs, imm) = mem(args[1])?;
            Ok(Instr::Sw { rt: parse_reg(args[0], line)?, rs, imm })
        }
        "switch" => {
            need(1)?;
            Ok(Instr::Switch { rd: parse_reg(args[0], line)? })
        }
        "send" => {
            need(1)?;
            Ok(Instr::Send { rs: parse_reg(args[0], line)? })
        }
        "nop" => {
            need(0)?;
            Ok(Instr::Nop)
        }
        "halt" => {
            need(0)?;
            Ok(Instr::Halt)
        }
        other => Err(AsmError { line, msg: format!("unknown mnemonic `{other}`") }),
    }
}

/// Disassembles one instruction.
pub fn disassemble(i: &Instr) -> String {
    fn alu_name(op: AluOp) -> &'static str {
        match op {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sltu => "sltu",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
        }
    }
    match i {
        Instr::Alu { op, rd, rs, rt } => {
            format!("{} r{}, r{}, r{}", alu_name(*op), rd.0, rs.0, rt.0)
        }
        Instr::AluImm { op, rd, rs, imm } => {
            let name = match op {
                AluOp::Add => "addi",
                AluOp::And => "andi",
                AluOp::Or => "ori",
                AluOp::Xor => "xori",
                AluOp::Sltu => "sltiu",
                AluOp::Sub | AluOp::Sll | AluOp::Srl => "addi",
            };
            format!("{name} r{}, r{}, {imm}", rd.0, rs.0)
        }
        Instr::Lui { rd, imm } => format!("lui r{}, {imm}", rd.0),
        Instr::Lw { rd, rs, imm } => format!("lw r{}, {imm}(r{})", rd.0, rs.0),
        Instr::Sw { rt, rs, imm } => format!("sw r{}, {imm}(r{})", rt.0, rs.0),
        Instr::Switch { rd } => format!("switch r{}", rd.0),
        Instr::Send { rs } => format!("send r{}", rs.0),
        Instr::Nop => "nop".to_owned(),
        Instr::Halt => "halt".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::InstrClass;

    #[test]
    fn assemble_basic_program() {
        let p = assemble(
            "addi r1, r0, 5   ; five\n\
             lui r2, 0x10\n\
             sw r1, 3(r2)     # store\n\
             lw r3, 3(r2)\n\
             switch r4\n\
             send r3\n\
             nop\n\
             halt",
        )
        .unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p[0].class(), InstrClass::Alu);
        assert_eq!(p[2].class(), InstrClass::Sd);
        assert_eq!(p[3].class(), InstrClass::Ld);
        assert_eq!(p[4].class(), InstrClass::Switch);
        assert_eq!(p[5].class(), InstrClass::Send);
    }

    #[test]
    fn disassemble_round_trips() {
        let src = "add r1, r2, r3\naddi r4, r5, 100\nlw r6, 7(r8)\nsw r9, 0(r10)\n\
                   switch r11\nsend r12\nlui r13, 4660\nnop\nhalt";
        let prog = assemble(src).unwrap();
        let text: Vec<String> = prog.iter().map(disassemble).collect();
        let again = assemble(&text.join("\n")).unwrap();
        assert_eq!(prog, again);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn register_range_checked() {
        assert!(assemble("addi r32, r0, 1").is_err());
        assert!(assemble("addi rx, r0, 1").is_err());
    }

    #[test]
    fn negative_immediates_wrap_to_16_bits() {
        let p = assemble("addi r1, r0, -1").unwrap();
        match p[0] {
            Instr::AluImm { imm, .. } => assert_eq!(imm, 0xFFFF),
            ref other => panic!("wrong decode {other:?}"),
        }
    }

    #[test]
    fn wrong_arity_rejected() {
        assert!(assemble("add r1, r2").is_err());
        assert!(assemble("nop r1").is_err());
    }
}
