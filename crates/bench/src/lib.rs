//! Shared helpers for the `repro-*` binaries and criterion benches.

use archval_pp::PpScale;

/// Parses a scale argument (`micro|standard|full|paper`), defaulting to
/// `standard`.
pub fn scale_from_args() -> PpScale {
    match std::env::args().nth(1).as_deref() {
        Some("micro") => PpScale::micro(),
        Some("full") => PpScale::full(),
        Some("paper") => PpScale::paper(),
        Some("standard") | None => PpScale::standard(),
        Some(other) => {
            eprintln!("unknown scale `{other}`; use micro|standard|full|paper");
            std::process::exit(2);
        }
    }
}

/// Parses the worker-thread count from the second positional argument or
/// the `ARCHVAL_THREADS` environment variable, defaulting to `1`
/// (sequential). The repro binaries produce identical numbers for any
/// value; threads only change wall-clock time.
pub fn threads_from_args() -> usize {
    let arg = std::env::args().nth(2).or_else(|| std::env::var("ARCHVAL_THREADS").ok());
    match arg.as_deref().map(str::parse::<usize>) {
        None => 1,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => {
            eprintln!("thread count must be a positive integer");
            std::process::exit(2);
        }
    }
}

/// Prints a two-column paper-vs-measured table row.
pub fn row(label: &str, paper: &str, measured: &str) {
    println!("{label:<42} {paper:>18} {measured:>18}");
}

/// Prints the table header.
pub fn header(title: &str) {
    println!("== {title} ==");
    println!("{:<42} {:>18} {:>18}", "", "paper", "measured");
}
