//! Criterion benchmarks for every pipeline stage: Verilog translation,
//! state enumeration, tour generation, vector generation and RTL
//! simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use archval_fsm::{enumerate, enumerate_parallel, EnumConfig};
use archval_pp::rtl::{ExtIn, Forces, RtlSim};
use archval_pp::{pp_control_model, pp_control_verilog, BugSet, PpScale};
use archval_stimgen::mapping::trace_to_stimulus;
use archval_stimgen::replay::replay;
use archval_tour::{generate_tours, TourConfig};
use archval_verilog::{parse, translate};

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("verilog_translate");
    for scale in [PpScale::micro(), PpScale::standard(), PpScale::paper()] {
        let src = pp_control_verilog(&scale);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale:?}")),
            &src,
            |b, src| {
                b.iter(|| {
                    let design = parse(src).unwrap();
                    translate(&design, "pp_control").unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_enumeration");
    group.sample_size(10);
    for scale in [PpScale::micro(), PpScale::standard()] {
        let model = pp_control_model(&scale).unwrap();
        let evals = {
            let r = enumerate(&model, &EnumConfig::default()).unwrap();
            r.stats.transitions_evaluated
        };
        group.throughput(Throughput::Elements(evals));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale:?}")),
            &model,
            |b, m| b.iter(|| enumerate(m, &EnumConfig::default()).unwrap()),
        );
    }
    group.finish();
}

fn bench_enumerate_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_enumeration_parallel");
    group.sample_size(10);
    let model = pp_control_model(&PpScale::standard()).unwrap();
    let evals = {
        let r = enumerate(&model, &EnumConfig::default()).unwrap();
        r.stats.transitions_evaluated
    };
    group.throughput(Throughput::Elements(evals));
    for threads in [1usize, 2, 4, 8] {
        let cfg = EnumConfig { threads, ..EnumConfig::default() };
        group.bench_with_input(BenchmarkId::new("threads", threads), &cfg, |b, cfg| {
            b.iter(|| enumerate_parallel(&model, cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_tours(c: &mut Criterion) {
    let mut group = c.benchmark_group("tour_generation");
    group.sample_size(10);
    for scale in [PpScale::micro(), PpScale::standard()] {
        let model = pp_control_model(&scale).unwrap();
        let enumd = enumerate(&model, &EnumConfig::default()).unwrap();
        group.throughput(Throughput::Elements(enumd.graph.edge_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale:?}")),
            &enumd,
            |b, e| b.iter(|| generate_tours(&e.graph, &TourConfig::default())),
        );
    }
    group.finish();
}

fn bench_vectors_and_replay(c: &mut Criterion) {
    let scale = PpScale::micro();
    let model = pp_control_model(&scale).unwrap();
    let enumd = enumerate(&model, &EnumConfig::default()).unwrap();
    let tours = generate_tours(&enumd.graph, &TourConfig::default());
    let trace = &tours.traces()[0];

    let mut group = c.benchmark_group("vector_generation");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("trace_to_stimulus(micro trace 0)", |b| {
        b.iter(|| trace_to_stimulus(&scale, &model, &tours, trace, 7))
    });
    group.finish();

    let stim = trace_to_stimulus(&scale, &model, &tours, trace, 7);
    let mut group = c.benchmark_group("rtl_replay");
    group.throughput(Throughput::Elements(stim.cycles.len() as u64));
    group.bench_function("replay(micro trace 0)", |b| {
        b.iter(|| replay(&stim, BugSet::none()).unwrap())
    });
    group.finish();
}

fn bench_rtl_throughput(c: &mut Criterion) {
    use archval_pp::asm::assemble;
    let program = assemble(
        "addi r1, r0, 1\naddi r2, r0, 2\nadd r3, r1, r2\nlw r4, 0x8000(r0)\n\
         sw r3, 0x8004(r0)\nswitch r5\nsend r5\nnop",
    )
    .unwrap();
    let mut group = c.benchmark_group("rtl_simulation");
    let cycles = 10_000u64;
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("10k cycles, straight-line program", |b| {
        b.iter(|| {
            let mut rtl = RtlSim::new(PpScale::standard(), BugSet::none(), &program, vec![1; 64]);
            for _ in 0..cycles {
                rtl.step(ExtIn::ready(), Forces::default());
            }
            rtl
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_translate,
    bench_enumerate,
    bench_enumerate_parallel,
    bench_tours,
    bench_vectors_and_replay,
    bench_rtl_throughput
);
criterion_main!(benches);
