//! Coverage-guided fuzzing over FSM choice sequences.
//!
//! The paper's Section 4 observation — uniform random stimulus almost
//! never composes several rare interface conditions in one window — is
//! also the founding observation of coverage-guided fuzzing: feedback
//! turns the needle-in-a-haystack conjunction into a sequence of single
//! discoveries, each retained and mutated further. This crate implements
//! that third validation workload, between "uniform random" and
//! "transition tour":
//!
//! * a **corpus** of input sequences with per-entry metadata (arcs newly
//!   covered at admission, length, energy) — [`corpus`];
//! * **mutation operators** — cycle-level choice flips, rare-condition
//!   boosts, truncation, extension, splicing and stacked havoc —
//!   [`mutate`];
//! * a **power schedule** that concentrates energy on entries which
//!   recently discovered new coverage — [`schedule`];
//! * **feedback maps** scoring each candidate replay: arc coverage
//!   against an enumerated graph ([`feedback::GraphFeedback`]) or, when
//!   enumeration is unaffordable, a graph-free hashed state-pair map
//!   ([`feedback::HashedFeedback`]);
//! * the **engine** tying it together with a deterministic
//!   generate → replay → merge round structure and an optional parallel
//!   worker pool — [`engine`].
//!
//! A stimulus sequence is a `Vec<u64>` of packed choice codes, one per
//! cycle, exactly as found on state-graph edge labels
//! ([`archval_fsm::Model::encode_choices`]). Working on codes keeps the
//! engine generic over any translated model; design-specific semantics
//! enter only through [`mutate::RareSpec`] (which choice values are
//! "rare") supplied by the caller.
//!
//! # Determinism
//!
//! Every run is a pure function of `(model, feedback, config)` —
//! including the thread count. Candidate generation and replay fan out
//! across workers, but each worker draws from its own seed stream
//! (`mix(seed, round, worker)`) against an immutable corpus snapshot, and
//! results are merged in `(worker, candidate)` order. Reruns with the
//! same seed and thread count are byte-identical.

pub mod corpus;
pub mod engine;
pub mod feedback;
pub mod mutate;
pub mod schedule;

pub use corpus::{Corpus, CorpusEntry};
pub use engine::{FuzzConfig, FuzzEngine, FuzzReport};
pub use feedback::{Feedback, GraphFeedback, HashedFeedback, Observation, Trace};
pub use mutate::RareSpec;
pub use schedule::PowerSchedule;

/// One candidate stimulus: a packed choice code per cycle.
pub type Seq = Vec<u64>;

/// Fuzzing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The model failed to evaluate a candidate (malformed model).
    Eval {
        /// Cycle within the candidate at which evaluation failed.
        cycle: usize,
        /// The underlying model error.
        source: archval_fsm::Error,
    },
    /// A replay reached a state missing from the enumerated graph. For a
    /// completely enumerated model this cannot happen, so it indicates a
    /// stale or truncated [`archval_fsm::enumerate::EnumResult`].
    LeftReachableSet {
        /// Cycle within the candidate at which the state was unknown.
        cycle: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Eval { cycle, source } => {
                write!(f, "model evaluation failed at candidate cycle {cycle}: {source}")
            }
            Error::LeftReachableSet { cycle } => {
                write!(f, "candidate left the enumerated reachable set at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Eval { source, .. } => Some(source),
            Error::LeftReachableSet { .. } => None,
        }
    }
}

/// splitmix64: the seed-stream derivation used throughout the crate.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives an independent 64-bit seed from a base seed and two indices
/// (round and worker), so every worker owns its own stream.
#[must_use]
pub fn derive_seed(seed: u64, round: u64, worker: u64) -> u64 {
    splitmix64(seed ^ splitmix64(round ^ splitmix64(worker)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for round in 0..8 {
            for worker in 0..8 {
                assert!(seen.insert(derive_seed(42, round, worker)));
            }
        }
    }

    #[test]
    fn error_display_mentions_cycle() {
        let e = Error::LeftReachableSet { cycle: 7 };
        assert!(e.to_string().contains("cycle 7"));
    }
}
