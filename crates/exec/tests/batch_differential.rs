//! Lane-equivalence differential suite for the batched SoA suffix
//! executor (`archval_exec::batch`): for every model, state and block of
//! choice permutations, `step_batch` must agree value-for-value with the
//! scalar `step_choices` path and the tree walker — including which lane
//! raises `DivisionByZero` first and what every earlier lane produced —
//! and whole enumerations must dump byte-identically for any lane count.
//!
//! The suite also pins the two batching regressions named by the design:
//! the state-only prefix is evaluated exactly once per dequeued state no
//! matter how many batches sweep it (`prefix_evals`), and structurally
//! valid bytecode mutants never panic the SoA interpreter in any lane.

use archval_exec::{apply_program_mutation, program_mutation_sites, CompiledEngine, StepProgram};
use archval_fsm::builder::ModelBuilder;
use archval_fsm::engine::{BatchError, StepEngine};
use archval_fsm::enumerate::{enumerate, enumerate_with, EnumConfig};
use archval_fsm::eval::Evaluator;
use archval_fsm::expr::BinaryOp;
use archval_fsm::{dump_enum_result, Error, ExprId, Model};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BINOPS: [BinaryOp; 17] = [
    BinaryOp::And,
    BinaryOp::Or,
    BinaryOp::BitAnd,
    BinaryOp::BitOr,
    BinaryOp::BitXor,
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Mod,
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::Shl,
    BinaryOp::Shr,
];

/// Builds a random small model from `seed` — same generator family as
/// `tests/differential.rs`: every operator, fallible `Mod` divisors,
/// guarded `Ternary`/`Select` nests and shared definitions, but biased
/// to always have at least one choice so a suffix exists to batch.
fn random_model(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ModelBuilder::new("random");

    let n_choices = rng.gen_range(1..=3usize);
    let choices: Vec<_> =
        (0..n_choices).map(|i| b.choice(format!("c{i}"), rng.gen_range(2..=4u64))).collect();
    let n_vars = rng.gen_range(1..=4usize);
    let vars: Vec<_> = (0..n_vars)
        .map(|i| {
            let size = rng.gen_range(2..=9u64);
            let init = rng.gen_range(0..size);
            b.state_var(format!("v{i}"), size, init)
        })
        .collect();

    let mut pool: Vec<ExprId> = Vec::new();
    for k in [0u64, 1, 2, 3, 7, u64::MAX] {
        pool.push(b.constant(k));
    }
    for &v in &vars {
        pool.push(b.var_expr(v));
    }
    for &c in &choices {
        pool.push(b.choice_expr(c));
    }

    let n_nodes = rng.gen_range(5..=30usize);
    for i in 0..n_nodes {
        let pick = |rng: &mut StdRng, pool: &Vec<ExprId>| pool[rng.gen_range(0..pool.len())];
        let node = match rng.gen_range(0..10u32) {
            0 => b.not(pick(&mut rng, &pool)),
            1 => b.bit_not(pick(&mut rng, &pool)),
            2..=5 => {
                let op = BINOPS[rng.gen_range(0..BINOPS.len())];
                b.binary(op, pick(&mut rng, &pool), pick(&mut rng, &pool))
            }
            6 | 7 => b.ternary(pick(&mut rng, &pool), pick(&mut rng, &pool), pick(&mut rng, &pool)),
            8 => {
                let arms = (0..rng.gen_range(1..=3usize))
                    .map(|_| (pick(&mut rng, &pool), pick(&mut rng, &pool)))
                    .collect();
                b.select(arms, pick(&mut rng, &pool))
            }
            _ => {
                let d = b.def(format!("d{i}"), pick(&mut rng, &pool));
                b.def_expr(d)
            }
        };
        pool.push(node);
    }

    for &v in &vars {
        let next = pool[rng.gen_range(0..pool.len())];
        b.set_next(v, next);
    }
    b.build().expect("random model must build")
}

/// One random in-domain state for `model`.
fn random_state(model: &Model, rng: &mut StdRng) -> Vec<u64> {
    model.vars().iter().map(|v| rng.gen_range(0..v.size)).collect()
}

/// Runs the scalar suffix over `lanes` consecutive choice codes starting
/// at `code0` and returns, per lane, what `step_choices` produced —
/// truncated at (and including) the first failing lane. The reference
/// the batched path must reproduce exactly.
fn scalar_reference(
    engine: &mut dyn StepEngine,
    model: &Model,
    code0: u64,
    lanes: usize,
) -> (Vec<Vec<u64>>, Option<(usize, Error)>) {
    let n_vars = model.vars().len();
    let mut outs = Vec::new();
    let mut out = vec![0u64; n_vars];
    for l in 0..lanes {
        let choices = model.decode_choices(code0 + l as u64);
        match engine.step_choices(&choices, &mut out) {
            Ok(()) => outs.push(out.clone()),
            Err(e) => return (outs, Some((l, e))),
        }
    }
    (outs, None)
}

/// Fills the SoA choice block for `lanes` codes starting at `code0`.
fn soa_choices(model: &Model, code0: u64, lanes: usize) -> Vec<u64> {
    let n_choices = model.choices().len();
    let mut block = vec![0u64; n_choices * lanes];
    for l in 0..lanes {
        for (c, &v) in model.decode_choices(code0 + l as u64).iter().enumerate() {
            block[c * lanes + l] = v;
        }
    }
    block
}

/// Asserts one batched sweep against its scalar reference: same failing
/// lane (or none), same error, and value-identical lanes up to it.
#[allow(clippy::too_many_arguments)]
fn assert_batch_matches(
    batched: &mut CompiledEngine,
    model: &Model,
    state: &[u64],
    code0: u64,
    lanes: usize,
    scalar_outs: &[Vec<u64>],
    scalar_err: &Option<(usize, Error)>,
    ctx: &str,
) {
    let n_vars = model.vars().len();
    let choices = soa_choices(model, code0, lanes);
    let mut out = vec![0u64; n_vars * lanes];
    batched.begin_state(state).expect("prefix is infallible");
    let got = batched.step_batch(lanes, &choices, &mut out);
    match scalar_err {
        None => assert_eq!(got, Ok(()), "{ctx}: scalar sweep succeeded"),
        Some((lane, error)) => assert_eq!(
            got,
            Err(BatchError { lane: *lane, error: error.clone() }),
            "{ctx}: scalar failed at lane {lane}"
        ),
    }
    for (l, want) in scalar_outs.iter().enumerate() {
        for v in 0..n_vars {
            assert_eq!(
                out[v * lanes + l],
                want[v],
                "{ctx}: lane {l} var {v} diverged (of {lanes} lanes)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Tree, compiled-scalar and batched agree value-for-value on random
    /// states and choice blocks — `DivisionByZero` lanes included: the
    /// batched error carries the first scalar-failing lane index, and
    /// every earlier lane's outputs are bit-identical.
    #[test]
    fn batched_suffix_matches_scalar_and_tree(seed in proptest::any::<u64>()) {
        let model = random_model(seed);
        let program = StepProgram::compile(&model);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C_4ED5);
        let mut tree = Evaluator::new(&model);
        let mut scalar = CompiledEngine::new(&program);
        let mut batched = CompiledEngine::new(&program);
        let combos = model.choice_combinations();
        let n_vars = model.vars().len();
        let mut tree_out = vec![0u64; n_vars];
        for _case in 0..8 {
            let state = random_state(&model, &mut rng);
            let widths: Vec<usize> =
                [1usize, 2, 3, 7, 16].iter().copied().filter(|&n| n as u64 <= combos).collect();
            let lanes = widths[rng.gen_range(0..widths.len())];
            let code0 = rng.gen_range(0..=combos - lanes as u64);

            scalar.begin_state(&state).expect("prefix is infallible");
            let (scalar_outs, scalar_err) =
                scalar_reference(&mut scalar, &model, code0, lanes);

            // the scalar engine itself must match the tree walker lane
            // by lane (anchoring the chain to the oracle)
            for (l, want) in scalar_outs.iter().enumerate() {
                let ch = model.decode_choices(code0 + l as u64);
                tree.next_state(&state, &ch, &mut tree_out)
                    .expect("scalar succeeded on this lane");
                prop_assert_eq!(&tree_out, want, "tree vs scalar, lane {}", l);
            }
            if let Some((l, e)) = &scalar_err {
                let ch = model.decode_choices(code0 + *l as u64);
                let t = tree.next_state(&state, &ch, &mut tree_out).unwrap_err();
                prop_assert_eq!(&t, e, "tree vs scalar error, lane {}", l);
            }

            assert_batch_matches(
                &mut batched, &model, &state, code0, lanes,
                &scalar_outs, &scalar_err,
                &format!("seed {seed} code0 {code0}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whole enumerations dump byte-identically to the tree walker for
    /// any batch width, `DivisionByZero`-failing models included (the
    /// typed error must match too).
    #[test]
    fn batched_enumeration_is_byte_identical(seed in proptest::any::<u64>()) {
        let model = random_model(seed);
        let program = StepProgram::compile(&model);
        let config = EnumConfig { state_limit: 50_000, ..EnumConfig::default() };
        let tree = enumerate(&model, &config);
        for lanes in [2usize, 5, 64] {
            let cfg = EnumConfig { batch_lanes: lanes, ..config.clone() };
            let batched = enumerate_with(&model, &cfg, &program);
            match (&tree, &batched) {
                (Ok(t), Ok(c)) => prop_assert_eq!(
                    dump_enum_result(&model, t),
                    dump_enum_result(&model, c),
                    "dump mismatch for seed {} lanes {}", seed, lanes
                ),
                (t, c) => prop_assert_eq!(
                    t.as_ref().err(), c.as_ref().err(),
                    "error disagreement for seed {} lanes {}", seed, lanes
                ),
            }
        }
    }

    /// Satellite 2: every structurally valid bytecode mutant executes
    /// under the batched engine without panicking in any lane, and its
    /// batched results equal its own scalar results (the mutant is its
    /// own oracle — both paths run the same wrong program).
    #[test]
    fn mutants_never_panic_and_stay_lane_equivalent(seed in proptest::any::<u64>()) {
        let model = random_model(seed);
        let program = StepProgram::compile(&model);
        let sites = program_mutation_sites(&program);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD5_EED5);
        let combos = model.choice_combinations();
        for site in sites.iter().take(12) {
            let mutant = apply_program_mutation(&program, site)
                .expect("sites enumerated from this very program must apply");
            mutant.validate().expect("mutants stay structurally valid");
            let mut scalar = CompiledEngine::new(&mutant);
            let mut batched = CompiledEngine::new(&mutant);
            let state = random_state(&model, &mut rng);
            let lanes = combos.min(16) as usize;
            scalar.begin_state(&state).expect("mutated prefix stays infallible");
            let (scalar_outs, scalar_err) =
                scalar_reference(&mut scalar, &model, 0, lanes);
            assert_batch_matches(
                &mut batched, &model, &state, 0, lanes,
                &scalar_outs, &scalar_err,
                &format!("seed {seed} mutant {}", site.label()),
            );
        }
    }
}

/// Satellite 1: the state-only prefix runs exactly once per dequeued
/// state — batching must not re-evaluate it per lane or per batch, and
/// the broadcast of prefix results into lane arrays must not disturb the
/// scalar register file.
#[test]
fn prefix_evaluates_once_per_state_across_batches() {
    let model = random_model(0xFEED_FACE);
    let program = StepProgram::compile(&model);
    let mut engine = CompiledEngine::new(&program);
    assert_eq!(engine.prefix_evals(), 0);
    let combos = model.choice_combinations();
    let n_vars = model.vars().len();
    let mut rng = StdRng::seed_from_u64(7);
    for states in 1..=4u64 {
        let state = random_state(&model, &mut rng);
        engine.begin_state(&state).unwrap();
        // many batches of varying width against the same state: the
        // prefix count must stay pinned to the begin_state count
        for lanes in [1usize, 4, 2, 8] {
            let lanes = lanes.min(combos as usize);
            let choices = soa_choices(&model, 0, lanes);
            let mut out = vec![0u64; n_vars * lanes];
            let _ = engine.step_batch(lanes, &choices, &mut out);
        }
        assert_eq!(
            engine.prefix_evals(),
            states,
            "prefix must run exactly once per dequeued state"
        );
    }
}

/// A hand-built fallible model where specific lanes divide by zero:
/// checks the earliest failing lane wins and earlier lanes keep exact
/// values (the division-by-zero half of the headline suite, pinned
/// deterministically rather than probabilistically).
#[test]
fn division_by_zero_reports_first_failing_lane() {
    let mut b = ModelBuilder::new("lanefail");
    let c = b.choice("c", 4);
    let v = b.state_var("x", 8, 5);
    let cur = b.var_expr(v);
    let ce = b.choice_expr(c);
    // x % c: fails exactly on the c == 0 lane
    b.set_next(v, b.modulo(cur, ce));
    let model = b.build().unwrap();
    let program = StepProgram::compile(&model);
    let mut engine = CompiledEngine::new(&program);
    engine.begin_state(&[5]).unwrap();

    // lanes carry codes 0..4, i.e. c = 0,1,2,3 — lane 0 fails
    let choices = soa_choices(&model, 0, 4);
    let mut out = vec![0u64; 4];
    let err = engine.step_batch(4, &choices, &mut out).unwrap_err();
    assert_eq!(err, BatchError { lane: 0, error: Error::DivisionByZero });

    // re-order so the failure sits mid-batch: codes 2,3,0,1 → lane 2
    let mut block = vec![0u64; 4];
    for (l, code) in [2u64, 3, 0, 1].iter().enumerate() {
        block[l] = *code;
    }
    engine.begin_state(&[5]).unwrap();
    let err = engine.step_batch(4, &block, &mut out).unwrap_err();
    assert_eq!(err, BatchError { lane: 2, error: Error::DivisionByZero });
    // lanes before the failure hold exact values: 5 % 2, 5 % 3
    assert_eq!(out[0], 1);
    assert_eq!(out[1], 2);
}

/// `step_batch` with zero lanes is a no-op, and a lane-count change
/// mid-state re-broadcasts correctly (the cached lane arrays must not
/// leak stale widths).
#[test]
fn lane_count_changes_mid_state_are_safe() {
    let model = random_model(0xABCD);
    let program = StepProgram::compile(&model);
    let combos = model.choice_combinations();
    let mut scalar = CompiledEngine::new(&program);
    let mut batched = CompiledEngine::new(&program);
    let mut rng = StdRng::seed_from_u64(99);
    let state = random_state(&model, &mut rng);
    batched.begin_state(&state).unwrap();
    let mut out = vec![0u64; 0];
    assert_eq!(batched.step_batch(0, &[], &mut out), Ok(()));
    for lanes in [4usize, 1, 7, 2] {
        let lanes = lanes.min(combos as usize);
        scalar.begin_state(&state).unwrap();
        let (scalar_outs, scalar_err) = scalar_reference(&mut scalar, &model, 0, lanes);
        assert_batch_matches(
            &mut batched,
            &model,
            &state,
            0,
            lanes,
            &scalar_outs,
            &scalar_err,
            &format!("width change to {lanes}"),
        );
    }
}

/// The predicate-mask lowering must actually engage: a jump-guarded
/// `Ternary` (fallible arm demanded lazily) vectorises instead of
/// falling back to the scalar per-lane loop, and random models
/// overwhelmingly vectorise too — the differential suites above would
/// be vacuous if everything fell back.
#[test]
fn guarded_regions_lower_to_predicates_not_fallback() {
    let mut b = ModelBuilder::new("guarded");
    let c = b.choice("c", 2);
    let v = b.state_var("x", 8, 1);
    let cur = b.var_expr(v);
    let ce = b.choice_expr(c);
    let risky = b.modulo(cur, ce);
    let safe = b.add(cur, b.constant(1));
    let next = b.ternary(ce, risky, safe);
    b.set_next(v, next);
    let model = b.build().unwrap();
    let program = StepProgram::compile(&model);
    let has_jumps = program.instrs()[program.prefix_len()..]
        .iter()
        .any(|i| matches!(i.op, archval_exec::Op::JumpIfZero));
    assert!(has_jumps, "the guarded arm must lower to a jump-guarded region");
    let mut engine = CompiledEngine::new(&program);
    assert!(engine.batch_is_vectorised(), "guarded regions must predicate, not fall back");

    let vectorised = (0..64u64)
        .filter(|&seed| {
            let p = StepProgram::compile(&random_model(seed));
            CompiledEngine::new(&p).batch_is_vectorised()
        })
        .count();
    assert!(vectorised >= 56, "only {vectorised}/64 random models vectorised");
}
