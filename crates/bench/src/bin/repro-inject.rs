//! Fault-injection campaign over the PP control model: how well do the
//! three stimulus strategies (transition tours, coverage-guided fuzz,
//! uniform random) discriminate a faulty design from the reference?
//!
//! Derives ≥50 mutants from the model and its compiled bytecode — plus
//! the three chaos mutants (explode / wedge / panic) that exercise the
//! campaign's budget and isolation machinery — runs every mutant under a
//! budget with panic isolation, prints the kill-rate matrix, and writes
//! `BENCH_inject.json`. The run then demonstrates checkpoint/resume: a
//! second campaign is halted partway, resumed from its JSONL checkpoint,
//! and must reproduce the uninterrupted report byte-for-byte.
//!
//! Exits non-zero if any mutant is missing a verdict, the chaos mutants
//! fail to land on their designated verdicts, the tours' kill rate falls
//! below the seeded floor, or the resumed report differs.
//!
//! ```sh
//! cargo run --release -p archval-bench --bin repro-inject micro [threads]
//! ```

use std::time::Duration;

use serde::{Deserialize, Serialize};

use archval::inject::{run_campaign, CampaignConfig, CampaignReport, RunBudget, Strategy, Verdict};
use archval::Engine;
use archval_bench::{
    emit_bench_json, engine_from_args, lanes_from_args, scale_from_args, threads_from_args,
    BenchError,
};
use archval_fsm::{enumerate, EnumConfig};
use archval_pp::pp_control_model;

/// Tours replay every arc of the reference graph; a campaign where they
/// kill less than this fraction of the scored mutants indicates a broken
/// generator or replay, not a hard fault model.
const TOUR_KILL_RATE_FLOOR: f64 = 0.5;

/// One row of the kill-rate matrix in `BENCH_inject.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KillRateRow {
    strategy: String,
    killed: usize,
    survived: usize,
    excluded: usize,
    rate: f64,
}

/// Everything `BENCH_inject.json` records.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct InjectBench {
    scale: String,
    threads: usize,
    engine: String,
    /// Batch width of each mutant's budgeted re-enumeration (1 = scalar).
    batch_lanes: usize,
    mutant_count: usize,
    reference_states: u64,
    reference_edges: u64,
    state_explosions: usize,
    timeouts: usize,
    panics: usize,
    kill_rates: Vec<KillRateRow>,
    tour_kill_rate_floor: f64,
    resume_byte_identical: bool,
    report: CampaignReport,
    wall_seconds: f64,
}

fn main() {
    archval_bench::run("repro-inject", body);
}

fn body() -> Result<(), BenchError> {
    let scale = scale_from_args();
    let threads = threads_from_args();
    let engine = engine_from_args();
    // each mutant's budgeted re-enumeration sweeps in SoA batches under
    // `--engine batched`; verdicts and checkpoint bytes are identical
    let batch_lanes = match engine {
        Engine::Batched => lanes_from_args(),
        Engine::Compiled => 1,
        Engine::Tree => {
            return Err(BenchError::Invalid(
                "repro-inject mutates compiled bytecode; use --engine compiled|batched".into(),
            ))
        }
    };
    let started = std::time::Instant::now();

    let model = pp_control_model(&scale)?;
    eprintln!("sizing budgets: enumerating the reference at {scale:?} ...");
    let reference = enumerate(&model, &EnumConfig::default())?;
    let ref_states = reference.stats.states;
    let combos = model.choice_combinations();

    // Budgets sized off the reference: a genuine mutant may grow the
    // reachable set several-fold and still complete; the explode engine's
    // cross product cannot fit and must trip the cut.
    let max_states = ref_states * 8 + 1024;
    let config = CampaignConfig {
        mutant_limit: 50,
        include_chaos: true,
        budget: RunBudget {
            max_states,
            max_transitions: (max_states as u64 + 1) * combos,
            deadline: Duration::from_secs(10),
            max_cycles: 1 << 16,
        },
        threads,
        wedge_sleep: Duration::from_secs(2),
        batch_lanes,
        ..Default::default()
    };

    eprintln!(
        "running {}-mutant campaign over {ref_states} reference states with {threads} worker \
         thread(s) ...",
        config.mutant_limit
    );
    let report = run_campaign(&model, &config)?;

    // ---- gates: every mutant typed-verdicted, chaos where it belongs ----
    if !report.complete {
        return Err(BenchError::Invalid("campaign did not complete".into()));
    }
    if report.mutants.len() < 50 {
        return Err(BenchError::Invalid(format!(
            "campaign ran {} mutants, need at least 50",
            report.mutants.len()
        )));
    }
    for outcome in &report.mutants {
        if outcome.verdicts.len() != 3 {
            return Err(BenchError::Invalid(format!(
                "mutant {} is missing verdicts ({} of 3)",
                outcome.label,
                outcome.verdicts.len()
            )));
        }
    }
    let count = |v: &Verdict| {
        report.mutants.iter().filter(|o| o.verdicts.iter().any(|s| s.verdict == *v)).count()
    };
    let state_explosions = count(&Verdict::StateExplosion);
    let timeouts = count(&Verdict::Timeout);
    let panics = count(&Verdict::Panicked);
    if state_explosions == 0 || timeouts == 0 || panics == 0 {
        return Err(BenchError::Invalid(format!(
            "degenerate verdicts missing: {state_explosions} explosions, {timeouts} timeouts, \
             {panics} panics (expected at least one of each from the chaos mutants)"
        )));
    }

    // ---- kill-rate matrix ----
    println!(
        "== fault-injection kill-rate matrix ({scale:?}, {} mutants) ==",
        report.mutants.len()
    );
    println!(
        "{:<10} {:>8} {:>9} {:>9} {:>8}",
        "strategy", "killed", "survived", "excluded", "rate"
    );
    let mut kill_rates = Vec::new();
    for kr in &report.kill_rates {
        println!(
            "{:<10} {:>8} {:>9} {:>9} {:>7.1}%",
            kr.strategy.name(),
            kr.killed,
            kr.survived,
            kr.excluded,
            100.0 * kr.rate()
        );
        kill_rates.push(KillRateRow {
            strategy: kr.strategy.name().to_string(),
            killed: kr.killed,
            survived: kr.survived,
            excluded: kr.excluded,
            rate: kr.rate(),
        });
    }
    for family in ["model", "program", "chaos"] {
        let members = report.mutants.iter().filter(|o| o.family == family).count();
        println!("  {family:<8} family: {members} mutants");
    }

    // ---- checkpoint/resume byte-identity demonstration ----
    eprintln!("demonstrating checkpoint/resume (halt after 20 mutants, then resume) ...");
    let dir = std::env::var("ARCHVAL_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let checkpoint = std::path::Path::new(&dir).join("archval-inject-checkpoint.jsonl");
    let _ = std::fs::remove_file(&checkpoint);
    let halted_config = CampaignConfig {
        checkpoint: Some(checkpoint.clone()),
        halt_after: Some(20),
        threads: 1, // exact halt count, deterministic interrupt point
        ..config.clone()
    };
    let partial = run_campaign(&model, &halted_config)?;
    if partial.complete {
        return Err(BenchError::Invalid("halted campaign unexpectedly completed".into()));
    }
    let resumed_config =
        CampaignConfig { checkpoint: Some(checkpoint.clone()), threads, ..config.clone() };
    let resumed = run_campaign(&model, &resumed_config)?;
    let _ = std::fs::remove_file(&checkpoint);
    let resume_byte_identical = resumed.to_json() == report.to_json();
    if !resume_byte_identical {
        return Err(BenchError::Invalid(
            "resumed campaign report differs from the uninterrupted run".into(),
        ));
    }
    println!(
        "\ncheckpoint/resume: killed after {} mutants, resumed the remaining {}, report \
         byte-identical to the uninterrupted run",
        partial.mutants.len(),
        report.mutants.len() - partial.mutants.len()
    );

    emit_bench_json(
        "inject",
        &InjectBench {
            scale: format!("{scale:?}"),
            threads,
            engine: engine.to_string(),
            batch_lanes,
            mutant_count: report.mutants.len(),
            reference_states: report.reference_states,
            reference_edges: report.reference_edges,
            state_explosions,
            timeouts,
            panics,
            kill_rates,
            tour_kill_rate_floor: TOUR_KILL_RATE_FLOOR,
            resume_byte_identical,
            report: report.clone(),
            wall_seconds: started.elapsed().as_secs_f64(),
        },
    )?;

    // ---- seeded floor gate (after the JSON so a failure still leaves data) ----
    let tours = report
        .kill_rate(Strategy::Tours)
        .ok_or_else(|| BenchError::Invalid("no tour kill rate in report".into()))?;
    if tours.rate() < TOUR_KILL_RATE_FLOOR {
        return Err(BenchError::Invalid(format!(
            "tour kill rate {:.1}% is below the seeded floor {:.0}%",
            100.0 * tours.rate(),
            100.0 * TOUR_KILL_RATE_FLOOR
        )));
    }
    println!(
        "tour kill rate {:.1}% clears the {:.0}% floor; campaign survived {} explosion(s), \
         {} timeout(s) and {} panic(s) without aborting",
        100.0 * tours.rate(),
        100.0 * TOUR_KILL_RATE_FLOOR,
        state_explosions,
        timeouts,
        panics
    );
    Ok(())
}
