//! Bit-packed storage for enumerated states.
//!
//! A state is one value per state variable; packing concatenates each value
//! in `ceil(log2(size))` bits. At the paper's scale (98 bits per state,
//! 229,571 states) packing keeps the state table inside a few megabytes,
//! matching the 34 MB footprint reported in Table 3.2.

use std::collections::HashMap;

use crate::model::{bits_for, Model};

/// Field layout: bit offset and width per state variable.
#[derive(Debug, Clone)]
pub struct StateLayout {
    offsets: Vec<u32>,
    widths: Vec<u32>,
    total_bits: u32,
    words: usize,
}

impl StateLayout {
    /// Computes the packed layout for a model's state variables.
    pub fn new(model: &Model) -> Self {
        let mut offsets = Vec::with_capacity(model.vars().len());
        let mut widths = Vec::with_capacity(model.vars().len());
        let mut off = 0u32;
        for v in model.vars() {
            let w = bits_for(v.size);
            offsets.push(off);
            widths.push(w);
            off += w;
        }
        let words = (off as usize).div_ceil(64);
        StateLayout { offsets, widths, total_bits: off, words: words.max(1) }
    }

    /// Total packed bits per state.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Number of 64-bit words per packed state.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Packs variable values into `out` (which must hold [`words`](Self::words) words).
    ///
    /// # Panics
    ///
    /// Panics if `values` or `out` have the wrong lengths.
    pub fn pack(&self, values: &[u64], out: &mut [u64]) {
        assert_eq!(values.len(), self.offsets.len(), "value count mismatch");
        assert_eq!(out.len(), self.words, "output word count mismatch");
        out.iter_mut().for_each(|w| *w = 0);
        for ((&v, &off), &w) in values.iter().zip(&self.offsets).zip(&self.widths) {
            debug_assert!(w == 64 || v < (1u64 << w), "value wider than field");
            let word = (off / 64) as usize;
            let bit = off % 64;
            out[word] |= v << bit;
            if bit + w > 64 {
                out[word + 1] |= v >> (64 - bit);
            }
        }
    }

    /// Unpacks a packed state into per-variable values.
    ///
    /// # Panics
    ///
    /// Panics if `packed` or `out` have the wrong lengths.
    pub fn unpack(&self, packed: &[u64], out: &mut [u64]) {
        assert_eq!(packed.len(), self.words, "input word count mismatch");
        assert_eq!(out.len(), self.offsets.len(), "output count mismatch");
        for ((o, &off), &w) in out.iter_mut().zip(&self.offsets).zip(&self.widths) {
            let word = (off / 64) as usize;
            let bit = off % 64;
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            let mut v = packed[word] >> bit;
            if bit + w > 64 {
                v |= packed[word + 1] << (64 - bit);
            }
            *o = v & mask;
        }
    }
}

/// Interning table mapping packed states to dense `u32` ids.
///
/// Stores all packed words in one contiguous buffer; ids are assigned in
/// discovery order, so id 0 is always the reset state during enumeration.
#[derive(Debug)]
pub struct StateTable {
    layout: StateLayout,
    words: Vec<u64>,
    index: HashMap<Box<[u64]>, u32>,
}

impl StateTable {
    /// Creates an empty table for states of the given layout.
    pub fn new(layout: StateLayout) -> Self {
        StateTable { layout, words: Vec::new(), index: HashMap::new() }
    }

    /// The layout used by this table.
    pub fn layout(&self) -> &StateLayout {
        &self.layout
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Interns a state given as per-variable values. Returns `(id, fresh)`
    /// where `fresh` is true if the state was not previously present.
    pub fn intern_values(&mut self, values: &[u64], scratch: &mut Vec<u64>) -> (u32, bool) {
        scratch.clear();
        scratch.resize(self.layout.words(), 0);
        self.layout.pack(values, scratch);
        self.intern_packed(scratch)
    }

    /// Looks up a state by per-variable values without inserting it.
    pub fn lookup_values(&self, values: &[u64]) -> Option<u32> {
        let mut packed = vec![0; self.layout.words()];
        self.layout.pack(values, &mut packed);
        self.index.get(packed.as_slice()).copied()
    }

    /// Looks up an already-packed state without inserting it. Only
    /// meaningful for words produced by an identical [`StateLayout`].
    pub fn lookup_packed(&self, packed: &[u64]) -> Option<u32> {
        self.index.get(packed).copied()
    }

    /// Interns an already-packed state.
    pub fn intern_packed(&mut self, packed: &[u64]) -> (u32, bool) {
        if let Some(&id) = self.index.get(packed) {
            return (id, false);
        }
        let id = self.index.len() as u32;
        self.words.extend_from_slice(packed);
        self.index.insert(packed.to_vec().into_boxed_slice(), id);
        (id, true)
    }

    /// Returns the packed words of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn packed(&self, id: u32) -> &[u64] {
        let w = self.layout.words();
        let start = id as usize * w;
        &self.words[start..start + w]
    }

    /// Unpacks state `id` into per-variable values.
    pub fn values(&self, id: u32) -> Vec<u64> {
        let mut out = vec![0; self.layout.offsets.len()];
        self.layout.unpack(self.packed(id), &mut out);
        out
    }

    /// Approximate heap usage in bytes (packed words plus index entries).
    pub fn approx_bytes(&self) -> usize {
        let words = self.words.len() * 8;
        let index =
            self.index.len() * (self.layout.words() * 8 + std::mem::size_of::<(Box<[u64]>, u32)>());
        words + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use proptest::prelude::*;

    fn model_with_sizes(sizes: &[u64]) -> Model {
        let mut b = ModelBuilder::new("m");
        let zero = b.constant(0);
        for (i, &s) in sizes.iter().enumerate() {
            let v = b.state_var(format!("v{i}"), s, 0);
            b.set_next(v, zero);
        }
        b.build().unwrap()
    }

    #[test]
    fn layout_counts_bits() {
        let m = model_with_sizes(&[2, 3, 4, 5, 256]);
        let l = StateLayout::new(&m);
        assert_eq!(l.total_bits(), 1 + 2 + 2 + 3 + 8);
        assert_eq!(l.words(), 1);
    }

    #[test]
    fn pack_unpack_round_trip_simple() {
        let m = model_with_sizes(&[2, 3, 4, 5]);
        let l = StateLayout::new(&m);
        let vals = [1u64, 2, 3, 4];
        let mut packed = vec![0; l.words()];
        l.pack(&vals, &mut packed);
        let mut back = [0u64; 4];
        l.unpack(&packed, &mut back);
        assert_eq!(back, vals);
    }

    #[test]
    fn pack_crosses_word_boundaries() {
        // 10 vars of 7 bits = 70 bits > 64
        let sizes = vec![100u64; 10];
        let m = model_with_sizes(&sizes);
        let l = StateLayout::new(&m);
        assert_eq!(l.words(), 2);
        let vals: Vec<u64> = (0..10).map(|i| (i * 13 + 5) % 100).collect();
        let mut packed = vec![0; l.words()];
        l.pack(&vals, &mut packed);
        let mut back = vec![0u64; 10];
        l.unpack(&packed, &mut back);
        assert_eq!(back, vals);
    }

    #[test]
    fn table_interning_dedupes() {
        let m = model_with_sizes(&[4, 4]);
        let mut t = StateTable::new(StateLayout::new(&m));
        let mut scratch = Vec::new();
        let (a, fresh_a) = t.intern_values(&[1, 2], &mut scratch);
        let (b, fresh_b) = t.intern_values(&[2, 1], &mut scratch);
        let (a2, fresh_a2) = t.intern_values(&[1, 2], &mut scratch);
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.values(a), vec![1, 2]);
        assert_eq!(t.values(b), vec![2, 1]);
    }

    proptest! {
        #[test]
        fn prop_pack_round_trip(sizes in proptest::collection::vec(2u64..1000, 1..20)) {
            let m = model_with_sizes(&sizes);
            let l = StateLayout::new(&m);
            // deterministic pseudo-values inside each domain
            let vals: Vec<u64> = sizes.iter().enumerate()
                .map(|(i, &s)| ((i as u64).wrapping_mul(2654435761) >> 3) % s)
                .collect();
            let mut packed = vec![0; l.words()];
            l.pack(&vals, &mut packed);
            let mut back = vec![0u64; vals.len()];
            l.unpack(&packed, &mut back);
            prop_assert_eq!(back, vals);
        }

        /// Round trip with random widths *and* random in-domain values
        /// (the deterministic variant above fixes the values).
        #[test]
        fn prop_pack_round_trip_random_values(
            pairs in proptest::collection::vec((2u64..1u64 << 32, any::<u64>()), 1..16)
        ) {
            let sizes: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let vals: Vec<u64> = pairs.iter().map(|&(s, seed)| seed % s).collect();
            let m = model_with_sizes(&sizes);
            let l = StateLayout::new(&m);
            let mut packed = vec![0; l.words()];
            l.pack(&vals, &mut packed);
            let mut back = vec![0u64; vals.len()];
            l.unpack(&packed, &mut back);
            prop_assert_eq!(back, vals);
        }

        /// Round trip where fields provably straddle 64-bit word
        /// boundaries: 31-bit fields sit at offsets 0, 31, 62, 93, ... so
        /// from the third field on, every other field crosses a word.
        #[test]
        fn prop_pack_round_trip_cross_word(
            seeds in proptest::collection::vec(any::<u64>(), 3..10)
        ) {
            let size = 1u64 << 31;
            let sizes = vec![size; seeds.len()];
            let vals: Vec<u64> = seeds.iter().map(|s| s % size).collect();
            let m = model_with_sizes(&sizes);
            let l = StateLayout::new(&m);
            prop_assert!(l.words() >= 2, "layout must span multiple words");
            let mut packed = vec![0; l.words()];
            l.pack(&vals, &mut packed);
            let mut back = vec![0u64; vals.len()];
            l.unpack(&packed, &mut back);
            prop_assert_eq!(back, vals);
        }

        /// Interning with multi-word keys: ids are dense, stable and
        /// decode back to the original values.
        #[test]
        fn prop_intern_cross_word_keys(
            states in proptest::collection::vec(
                proptest::collection::vec(any::<u64>(), 3), 1..8
            )
        ) {
            let size = 1u64 << 31;
            let m = model_with_sizes(&[size, size, size]);
            let mut t = StateTable::new(StateLayout::new(&m));
            let mut scratch = Vec::new();
            let mut ids = Vec::new();
            for s in &states {
                let vals: Vec<u64> = s.iter().map(|x| x % size).collect();
                let (id, _) = t.intern_values(&vals, &mut scratch);
                ids.push((id, vals));
            }
            for (id, vals) in ids {
                let (again, fresh) = t.intern_values(&vals, &mut scratch);
                prop_assert_eq!(again, id);
                prop_assert!(!fresh);
                prop_assert_eq!(t.values(id), vals);
            }
        }

        #[test]
        fn prop_intern_ids_stable(vals in proptest::collection::vec(0u64..16, 1..12)) {
            let m = model_with_sizes(&vec![16; vals.len()]);
            let mut t = StateTable::new(StateLayout::new(&m));
            let mut scratch = Vec::new();
            let (id1, _) = t.intern_values(&vals, &mut scratch);
            let (id2, fresh) = t.intern_values(&vals, &mut scratch);
            prop_assert_eq!(id1, id2);
            prop_assert!(!fresh);
            prop_assert_eq!(t.values(id1), vals);
        }
    }
}
