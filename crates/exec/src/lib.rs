//! Bytecode compilation of [`archval_fsm::Model`]s into flat register
//! programs — the reproduction's fast step engine.
//!
//! Every execution layer of the reproduction (sequential and parallel
//! enumeration, fuzz replay, sim campaigns) advances a model one clock
//! cycle at a time, tens of millions of times per paper-scale run. The
//! tree-walking [`Evaluator`](archval_fsm::eval::Evaluator) pays match
//! dispatch, memo-generation checks and recursion per node per call;
//! this crate instead lowers the model's expression arena once into a
//! [`StepProgram`] — a topologically-ordered register bytecode with
//! constant folding, value-numbering CSE and dead-code elimination — and
//! executes it with a tight interpreter loop ([`CompiledEngine`]).
//!
//! The program is split into a **state-only prefix** (run once per
//! dequeued state via [`StepEngine::begin_state`]) and a
//! **choice-dependent suffix** (run per choice permutation via
//! [`StepEngine::step_choices`]), matching the enumerator's sweep of
//! every choice combination against a fixed state.
//!
//! The engine is *semantically exact*: for every `(state, choices)` pair
//! it produces bit-identical successors to the tree walker and fails
//! with [`DivisionByZero`](archval_fsm::Error::DivisionByZero) on
//! exactly the same inputs — safe expressions are lowered branch-free
//! (guarded `CondMove`s), while regions that could raise are lowered as
//! jump-guarded lazy code mirroring the tree walker's demand order. The
//! differential suites in `tests/` and `tests/engine_differential.rs`
//! at the workspace root hold this invariant.
//!
//! # Example
//!
//! ```
//! use archval_fsm::builder::ModelBuilder;
//! use archval_fsm::engine::StepEngine;
//! use archval_exec::StepProgram;
//!
//! let mut b = ModelBuilder::new("counter");
//! let en = b.choice("enable", 2);
//! let count = b.state_var("count", 4, 0);
//! let cur = b.var_expr(count);
//! let bumped = b.add(cur, b.constant(1));
//! let next = b.ternary(b.choice_expr(en), bumped, cur);
//! b.set_next(count, next);
//! let model = b.build()?;
//!
//! let program = StepProgram::compile(&model);
//! let mut engine = archval_exec::CompiledEngine::new(&program);
//! let mut out = [0u64];
//! engine.begin_state(&[3])?;
//! engine.step_choices(&[1], &mut out)?;
//! assert_eq!(out, [0]); // 3 + 1 wraps in the 4-value domain
//! # Ok::<(), archval_fsm::Error>(())
//! ```

pub mod batch;
pub mod engine;
pub mod lower;
pub mod mutate;
pub mod program;

pub use engine::CompiledEngine;
pub use lower::compile;
pub use mutate::{apply_program_mutation, program_mutation_sites, ProgramMutation};
pub use program::{CompileStats, Instr, Op, StepProgram};

impl StepProgram {
    /// Compiles `model` into a step program; see [`lower::compile`].
    pub fn compile(model: &archval_fsm::Model) -> StepProgram {
        lower::compile(model)
    }
}
