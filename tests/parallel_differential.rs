//! Differential equivalence of the sequential and frontier-parallel
//! enumerators on the real PP control model (not just the synthetic
//! grid in `crates/fsm/tests/parallel_equivalence.rs`), plus the same
//! check through the end-to-end `ValidationFlow`.

use archval::flow::ValidationFlow;
use archval_fsm::enumerate::{enumerate, EnumConfig};
use archval_fsm::parallel::enumerate_parallel;
use archval_fsm::{dump_enum_result, EdgePolicy, StateId};
use archval_pp::{pp_control_verilog, testkit, PpScale};

#[test]
fn pp_micro_parallel_matches_sequential_both_policies() {
    let model = testkit::micro_model().1;
    for policy in [EdgePolicy::FirstLabel, EdgePolicy::AllLabels] {
        let cfg = EnumConfig { edge_policy: policy, ..EnumConfig::default() };
        let seq = enumerate(&model, &cfg).unwrap();
        for threads in [1usize, 2, 8] {
            let par = enumerate_parallel(&model, &EnumConfig { threads, ..cfg.clone() }).unwrap();
            assert_eq!(par.stats.states, seq.stats.states, "{policy:?} x{threads}");
            assert_eq!(par.stats.edges, seq.stats.edges, "{policy:?} x{threads}");
            assert_eq!(
                par.stats.transitions_evaluated, seq.stats.transitions_evaluated,
                "{policy:?} x{threads}"
            );
            for s in 0..seq.graph.state_count() as u32 {
                assert_eq!(par.table.packed(s), seq.table.packed(s));
                assert_eq!(par.graph.edges(StateId(s)), seq.graph.edges(StateId(s)));
            }
        }
    }
}

#[test]
fn pp_standard_parallel_dump_is_byte_identical() {
    let model = testkit::standard_model().1;
    let seq = enumerate(&model, &EnumConfig::default()).unwrap();
    let cfg = EnumConfig { threads: 8, ..EnumConfig::default() };
    let a = enumerate_parallel(&model, &cfg).unwrap();
    let b = enumerate_parallel(&model, &cfg).unwrap();
    let dump_seq = dump_enum_result(&model, &seq);
    assert_eq!(dump_enum_result(&model, &a), dump_seq);
    assert_eq!(dump_enum_result(&model, &b), dump_seq);
}

#[test]
fn threaded_validation_flow_matches_on_pp_verilog() {
    let scale = PpScale::micro();
    let src = pp_control_verilog(&scale);
    let seq = ValidationFlow::from_verilog(&src, "pp_control").unwrap().run().unwrap();
    let par = ValidationFlow::from_verilog(&src, "pp_control").unwrap().threads(4).run().unwrap();
    assert_eq!(par.enumd.stats.states, seq.enumd.stats.states);
    assert_eq!(par.enumd.stats.edges, seq.enumd.stats.edges);
    assert_eq!(par.summary().full_coverage, seq.summary().full_coverage);
    assert_eq!(par.tours.stats().traces, seq.tours.stats().traces);
    assert_eq!(par.tours.stats().total_edge_traversals, seq.tours.stats().total_edge_traversals);
}
