//! Generator for the PP control logic as annotated Verilog.
//!
//! The emitted module transcribes [`CtrlState::step`] exactly — a property
//! test drives both in lockstep — so the FSM model obtained by running the
//! emitted text through `archval-verilog`'s translator *is* the control
//! model of the RTL simulator. This mirrors the paper's flow, where the
//! designers annotate the real Verilog and the translator extracts the
//! interacting control FSMs (581 of 2727 control lines for the PP).
//!
//! [`CtrlState::step`]: crate::control::CtrlState::step

use std::fmt::Write as _;

use crate::config::PpScale;

fn log2(n: u64) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

/// Emits the annotated Verilog source of the PP control module
/// `pp_control` at the given scale.
///
/// # Panics
///
/// Panics if `scale.fill_beats` is not a power of two of at least 2
/// (counter widths must be exact).
pub fn pp_control_verilog(scale: &PpScale) -> String {
    assert!(
        scale.fill_beats.is_power_of_two() && scale.fill_beats >= 2,
        "fill_beats must be a power of two >= 2"
    );
    let w = log2(scale.fill_beats); // beat counter width
    let last = scale.fill_beats - 1;
    let mut s = String::new();
    let dual = scale.dual_comm_slot;
    let extra = scale.extra_stage;

    let _ = writeln!(
        s,
        "// Protocol Processor control logic (generated)\n\
         // scale: fill_beats={} extra_stage={} dual_comm_slot={}\n\
         module pp_control(clk, reset, iclass,{} ihit, dhit, victim_dirty, same_line,\n\
         \x20                 inbox_ready, outbox_ready, mem_ready, stall_out);",
        scale.fill_beats,
        extra,
        dual,
        if dual { " iclass2," } else { "" }
    );
    s.push_str("  input clk, reset;\n");
    s.push_str("  input [2:0] iclass;       // archval: abstract classes=5\n");
    if dual {
        s.push_str("  input [1:0] iclass2;      // archval: abstract classes=3\n");
    }
    for sig in
        ["ihit", "dhit", "victim_dirty", "same_line", "inbox_ready", "outbox_ready", "mem_ready"]
    {
        let _ = writeln!(s, "  input {sig};             // archval: abstract");
    }
    s.push_str("  output stall_out;\n\n");

    // state registers — declaration order must match CtrlState::to_values
    s.push_str("  reg booted;\n");
    s.push_str("  reg [2:0] m_class;\n");
    if dual {
        s.push_str("  reg [1:0] m2_class;\n");
    }
    if extra {
        s.push_str("  reg [2:0] e_class;\n");
        if dual {
            s.push_str("  reg [1:0] e2_class;\n");
        }
    }
    s.push_str("  reg [2:0] w_class;\n");
    s.push_str("  reg [1:0] irefill;\n");
    s.push_str("  reg [2:0] drefill;\n");
    let _ = writeln!(s, "  reg [{}:0] dcnt;", w - 1);
    let _ = writeln!(s, "  reg [{}:0] icnt;", w - 1);
    s.push_str("  reg spill_pend;\n  reg store_pend;\n  reg conflict;\n\n");

    // combinational control signals — inside the control region: the
    // paper includes "any logic that feeds the state machines"
    s.push_str("  // archval: control-begin\n");
    let wires = [
        "is_ld",
        "is_sd",
        "is_mem",
        "is_sw",
        "is_se",
        "ext_stall",
        "conflict_stall",
        "dr_idle",
        "dr_req",
        "dr_crit",
        "dr_fill",
        "dr_spill",
        "d_stall",
        "mem_stall",
        "advance",
        "d_miss_start",
        "ir_idle",
        "i_miss_start",
        "fetch_valid",
        "sd_completes",
    ];
    for wd in wires {
        let _ = writeln!(s, "  wire {wd};");
    }
    s.push_str("  wire [2:0] fetched_m;\n  wire [2:0] next_m;\n");
    if dual {
        s.push_str("  wire [1:0] fetched_m2;\n");
    }
    s.push('\n');
    s.push_str("  assign is_ld = m_class == 3'd1;\n");
    s.push_str("  assign is_sd = m_class == 3'd2;\n");
    s.push_str("  assign is_mem = is_ld || is_sd;\n");
    s.push_str("  assign is_sw = m_class == 3'd3;\n");
    s.push_str("  assign is_se = m_class == 3'd4;\n");
    if dual {
        s.push_str(
            "  assign ext_stall = (is_se && !outbox_ready) || (is_sw && !inbox_ready)\n\
             \x20                 || ((m2_class == 2'd2) && !outbox_ready)\n\
             \x20                 || ((m2_class == 2'd1) && !inbox_ready);\n",
        );
    } else {
        s.push_str("  assign ext_stall = (is_se && !outbox_ready) || (is_sw && !inbox_ready);\n");
    }
    s.push_str("  assign conflict_stall = conflict;\n");
    s.push_str("  assign dr_idle = drefill == 3'd0;\n");
    s.push_str("  assign dr_req = drefill == 3'd1;\n");
    s.push_str("  assign dr_crit = drefill == 3'd2;\n");
    s.push_str("  assign dr_fill = drefill == 3'd3;\n");
    s.push_str("  assign dr_spill = drefill == 3'd4;\n");
    s.push_str(
        "  assign d_stall = is_mem && !ext_stall && !conflict_stall\n\
         \x20               && (dr_req || dr_fill || dr_spill || (!dhit && dr_idle));\n",
    );
    s.push_str("  assign mem_stall = ext_stall || conflict_stall || d_stall;\n");
    s.push_str("  assign advance = !mem_stall;\n");
    s.push_str(
        "  assign d_miss_start = is_mem && !dhit && dr_idle && !ext_stall && !conflict_stall;\n",
    );
    s.push_str("  assign ir_idle = irefill == 2'd0;\n");
    s.push_str("  assign i_miss_start = advance && !ihit && ir_idle;\n");
    s.push_str("  assign fetch_valid = advance && ihit && ir_idle;\n");
    s.push_str("  assign sd_completes = advance && is_sd;\n");
    s.push_str("  assign fetched_m = fetch_valid ? iclass : 3'd5;\n");
    if dual {
        s.push_str("  assign fetched_m2 = fetch_valid ? iclass2 : 2'd3;\n");
    }
    if extra {
        s.push_str("  assign next_m = advance ? e_class : m_class;\n");
    } else {
        s.push_str("  assign next_m = advance ? fetched_m : m_class;\n");
    }
    s.push_str("  assign stall_out = mem_stall;\n\n");

    // clocked state updates
    s.push_str("  always @(posedge clk) begin\n");
    s.push_str("    if (reset) begin\n");
    s.push_str("      booted <= 1'b0;\n      m_class <= 3'd5;\n");
    if dual {
        s.push_str("      m2_class <= 2'd3;\n");
    }
    if extra {
        s.push_str("      e_class <= 3'd5;\n");
        if dual {
            s.push_str("      e2_class <= 2'd3;\n");
        }
    }
    s.push_str("      w_class <= 3'd5;\n      irefill <= 2'd0;\n      drefill <= 3'd0;\n");
    let _ = writeln!(s, "      dcnt <= {w}'d0;\n      icnt <= {w}'d0;");
    s.push_str("      spill_pend <= 1'b0;\n      store_pend <= 1'b0;\n      conflict <= 1'b0;\n");
    s.push_str("    end else begin\n");
    s.push_str("      booted <= 1'b1;\n");
    if extra {
        s.push_str("      if (advance) begin\n");
        s.push_str("        m_class <= e_class;\n        e_class <= fetched_m;\n");
        if dual {
            s.push_str("        m2_class <= e2_class;\n        e2_class <= fetched_m2;\n");
        }
        s.push_str("        w_class <= m_class;\n      end\n");
    } else {
        s.push_str("      if (advance) begin\n");
        s.push_str("        m_class <= fetched_m;\n");
        if dual {
            s.push_str("        m2_class <= fetched_m2;\n");
        }
        s.push_str("        w_class <= m_class;\n      end\n");
    }
    // D refill FSM
    let _ = writeln!(
        s,
        "      case (drefill)\n\
         \x20       3'd0: if (d_miss_start) drefill <= 3'd1;\n\
         \x20       3'd1: if (mem_ready && !(irefill == 2'd2)) drefill <= 3'd2;\n\
         \x20       3'd2: drefill <= 3'd3;\n\
         \x20       3'd3: if (mem_ready && (dcnt == {w}'d{last})) begin\n\
         \x20         if (spill_pend) drefill <= 3'd4;\n\
         \x20         else drefill <= 3'd0;\n\
         \x20       end\n\
         \x20       default: if (mem_ready) drefill <= 3'd0;\n\
         \x20     endcase"
    );
    let _ = writeln!(
        s,
        "      if (dr_crit) dcnt <= {w}'d0;\n\
         \x20     else if (dr_fill && mem_ready) begin\n\
         \x20       if (dcnt == {w}'d{last}) dcnt <= {w}'d0;\n\
         \x20       else dcnt <= dcnt + {w}'d1;\n\
         \x20     end"
    );
    s.push_str(
        "      if (d_miss_start) spill_pend <= victim_dirty;\n\
         \x20     else if (dr_spill && mem_ready) spill_pend <= 1'b0;\n",
    );
    // I refill FSM
    let _ = writeln!(
        s,
        "      case (irefill)\n\
         \x20       2'd0: if (i_miss_start) irefill <= 2'd1;\n\
         \x20       2'd1: if (mem_ready && dr_idle) irefill <= 2'd2;\n\
         \x20       2'd2: if (mem_ready && (icnt == {w}'d{last})) irefill <= 2'd3;\n\
         \x20       default: irefill <= 2'd0;\n\
         \x20     endcase"
    );
    let _ = writeln!(
        s,
        "      if ((irefill == 2'd2) && mem_ready) begin\n\
         \x20       if (icnt == {w}'d{last}) icnt <= {w}'d0;\n\
         \x20       else icnt <= icnt + {w}'d1;\n\
         \x20     end"
    );
    s.push_str("      store_pend <= sd_completes;\n");
    s.push_str(
        "      conflict <= sd_completes\n\
         \x20               && ((next_m == 3'd2) || ((next_m == 3'd1) && same_line));\n",
    );
    s.push_str("    end\n  end\n");
    s.push_str("  // archval: control-end\n");
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_of_powers() {
        assert_eq!(log2(2), 1);
        assert_eq!(log2(4), 2);
        assert_eq!(log2(16), 4);
    }

    #[test]
    fn emits_scaled_variants() {
        let micro = pp_control_verilog(&PpScale::micro());
        assert!(!micro.contains("iclass2"));
        assert!(!micro.contains("e_class"));
        let std = pp_control_verilog(&PpScale::standard());
        assert!(std.contains("iclass2"));
        assert!(!std.contains("e_class"));
        let paper = pp_control_verilog(&PpScale::paper());
        assert!(paper.contains("e_class"));
        assert!(paper.contains("4'd15"), "16-beat counter comparisons");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_beats_rejected() {
        let bad = PpScale { fill_beats: 3, ..PpScale::micro() };
        let _ = pp_control_verilog(&bad);
    }
}
