//! Regenerates Table 3.3: test-vector generation with and without the
//! 10,000-instruction trace limit, paper columns alongside.

use serde::{Deserialize, Serialize};

use archval_bench::{emit_bench_json, scale_from_args, BenchError};
use archval_fsm::{enumerate, EnumConfig};
use archval_pp::pp_control_model;
use archval_stimgen::mapping::pp_instr_cost;
use archval_tour::{generate_tours_with, TourConfig};

/// One generation run (with or without the trace limit) in
/// `BENCH_table3_3.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GenRow {
    limit: Option<u64>,
    traces: usize,
    total_edge_traversals: u64,
    total_instructions: u64,
    longest_trace_edges: usize,
    generation_seconds: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Table33Bench {
    scale: String,
    rows: Vec<GenRow>,
    wall_seconds: f64,
}

fn main() {
    archval_bench::run("repro-table3-3", body);
}

fn body() -> Result<(), BenchError> {
    let scale = scale_from_args();
    let started = std::time::Instant::now();
    eprintln!("enumerating at {scale:?} ...");
    let model = pp_control_model(&scale)?;
    let enumd = enumerate(&model, &EnumConfig::default())?;
    eprintln!("generating tours ...");

    let unlimited = generate_tours_with(
        &enumd.graph,
        &TourConfig::default(),
        pp_instr_cost(&scale, &model, &enumd),
    );
    let limited = generate_tours_with(
        &enumd.graph,
        &TourConfig::with_paper_limit(),
        pp_instr_cost(&scale, &model, &enumd),
    );
    if !unlimited.covers_all_arcs(&enumd.graph) || !limited.covers_all_arcs(&enumd.graph) {
        return Err(BenchError::Invalid("tours left arcs uncovered".into()));
    }

    println!("== Table 3.3 — Test Vector Generation Statistics ({scale:?}) ==");
    println!(
        "{:<34} {:>16} {:>16} | {:>14} {:>14}",
        "", "paper no-limit", "paper 10k-limit", "ours no-limit", "ours 10k-limit"
    );
    let p = |label: &str, a: String, b: String, c: String, d: String| {
        println!("{label:<34} {a:>16} {b:>16} | {c:>14} {d:>14}");
    };
    let (u, l) = (unlimited.stats(), limited.stats());
    p(
        "Number of Traces Generated",
        "1,296".into(),
        "1,296".into(),
        u.traces.to_string(),
        l.traces.to_string(),
    );
    p(
        "Total edge traversals",
        "21,200,173".into(),
        "21,252,235".into(),
        u.total_edge_traversals.to_string(),
        l.total_edge_traversals.to_string(),
    );
    p(
        "Total instructions",
        "8,521,468".into(),
        "8,557,660".into(),
        u.total_instructions.to_string(),
        l.total_instructions.to_string(),
    );
    p(
        "Generation time",
        "161,159 cpu s".into(),
        "193,330 cpu s".into(),
        format!("{:.1} s", u.generation_time.as_secs_f64()),
        format!("{:.1} s", l.generation_time.as_secs_f64()),
    );
    p(
        "Longest Single Trace (edges)",
        "21,197,977".into(),
        "144,520".into(),
        u.longest_trace_edges.to_string(),
        l.longest_trace_edges.to_string(),
    );
    p(
        "Est. simulation @100Hz (total)",
        "58.9 hours".into(),
        "59.0 hours".into(),
        format!("{:.1} h", u.estimated_sim_time(100.0).as_secs_f64() / 3600.0),
        format!("{:.1} h", l.estimated_sim_time(100.0).as_secs_f64() / 3600.0),
    );
    p(
        "Est. sim @100Hz (longest trace)",
        "58.9 hours".into(),
        "24 mins".into(),
        format!("{:.1} h", u.estimated_longest_trace_time(100.0).as_secs_f64() / 3600.0),
        format!("{:.1} m", l.estimated_longest_trace_time(100.0).as_secs_f64() / 60.0),
    );

    println!("\nshape checks:");
    println!(
        "  trace counts identical with/without limit: {} (paper: yes — reset-only arcs \n\
         bound the count; ours achieves the lower bound {})",
        u.traces == l.traces,
        u.min_traces_lower_bound
    );
    println!(
        "  instruction overhead of the limit: {:+.2}% (paper: +0.42%)",
        100.0 * (l.total_instructions as f64 / u.total_instructions as f64 - 1.0)
    );
    println!(
        "  first trace dominates without limit: longest/total = {:.1}% (paper: >99%)",
        100.0 * u.longest_trace_edges as f64 / u.total_edge_traversals as f64
    );
    println!("  instructions per arc: {:.2} (paper: ~7)", u.instructions_per_arc());

    let gen_row = |limit: Option<u64>, s: &archval_tour::stats::TourStats| GenRow {
        limit,
        traces: s.traces,
        total_edge_traversals: s.total_edge_traversals,
        total_instructions: s.total_instructions,
        longest_trace_edges: s.longest_trace_edges,
        generation_seconds: s.generation_time.as_secs_f64(),
    };
    emit_bench_json(
        "table3_3",
        &Table33Bench {
            scale: format!("{scale:?}"),
            rows: vec![gen_row(None, u), gen_row(Some(10_000), l)],
            wall_seconds: started.elapsed().as_secs_f64(),
        },
    )?;
    Ok(())
}
