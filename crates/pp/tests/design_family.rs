//! Property tests over the generated design family: every valid
//! [`DesignSpec`] the strategy can produce must round-trip through its
//! canonical string, build a control model, enumerate under a micro
//! budget, and fingerprint identically across independent builds.

use std::time::Duration;

use archval_fsm::{enumerate, EnumBudget, EnumConfig};
use archval_pp::{pp_control_model, ClassSet, DesignSpec, FillPolicy};
use proptest::prelude::*;

/// An arbitrary *valid* spec, derived by construction rather than by
/// filtering (the vendored proptest has no `prop_filter`): each axis is
/// drawn independently, then the cross-axis rules from
/// `DesignSpec::validate` are repaired in `prop_map` — LRU needs ways,
/// boxes need their consuming class, dual-issue needs a comm class and
/// refuses width-1 boxes.
fn arb_valid_spec() -> impl Strategy<Value = DesignSpec> {
    (
        0usize..4,           // fill-beat index into [2, 4, 8, 16]
        0u32..3,             // pipe_extra
        proptest::bool::ANY, // dual_comm_slot
        1u32..5,             // cache_ways
        proptest::bool::ANY, // prefer LRU (only meaningful with ways >= 2)
        1u32..4,             // spill_depth
        0u32..5,             // inbox_width
        0u32..5,             // outbox_width
        proptest::bool::ANY, // switch class
        proptest::bool::ANY, // send class
    )
        .prop_map(|(bi, pipe_extra, dual, ways, lru, spill, inbox, outbox, sw, se)| {
            let sw = sw || (dual && !se); // dual-issue needs a comm class
            let inbox = match (sw, dual, inbox) {
                (false, _, _) => 0,   // Inbox counter needs `switch`
                (true, true, 1) => 2, // width 1 deadlocks the dual slot
                (true, _, w) => w,
            };
            let outbox = match (se, dual, outbox) {
                (false, _, _) => 0,
                (true, true, 1) => 2,
                (true, _, w) => w,
            };
            DesignSpec {
                fill_beats: [2, 4, 8, 16][bi],
                pipe_extra,
                dual_comm_slot: dual,
                cache_ways: ways,
                fill_policy: if ways >= 2 && lru {
                    FillPolicy::Lru
                } else {
                    FillPolicy::RoundRobin
                },
                spill_depth: spill,
                inbox_width: inbox,
                outbox_width: outbox,
                classes: ClassSet { ld: true, sd: true, switch_: sw, send: se },
            }
        })
}

/// Keeps each sampled member micro-sized: the property is "enumerates
/// cleanly under a budget", not "the whole space is small".
fn micro_enum_config() -> EnumConfig {
    EnumConfig {
        budget: EnumBudget {
            max_states: Some(2_000),
            max_transitions: Some(400_000),
            deadline: Some(Duration::from_secs(10)),
        },
        ..EnumConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Validity by construction, canonical round-trip, buildability,
    /// budgeted enumeration, and fingerprint stability for arbitrary
    /// family members.
    #[test]
    fn generated_specs_build_enumerate_and_fingerprint_stably(spec in arb_valid_spec()) {
        prop_assert!(spec.validate().is_ok(), "strategy produced invalid spec {spec:?}");

        // canonical string is the family key: parse(to_canonical_string) is identity
        let canonical = spec.to_canonical_string();
        let reparsed = DesignSpec::parse(&canonical)
            .map_err(|e| TestCaseError::Fail(format!("{canonical}: {e}")))?;
        prop_assert_eq!(&reparsed, &spec, "canonical round-trip changed the spec");

        // the spec builds a model whose name is its design id
        let model = pp_control_model(&spec)
            .map_err(|e| TestCaseError::Fail(format!("{canonical}: {e}")))?;
        let design_id = spec.design_id();
        prop_assert_eq!(model.name(), design_id.as_str());

        // fingerprints are a pure function of the spec: an independent
        // generate -> parse -> translate run agrees bit-for-bit
        let again = pp_control_model(&spec)
            .map_err(|e| TestCaseError::Fail(format!("{canonical}: {e}")))?;
        prop_assert_eq!(model.fingerprint(), again.fingerprint(), "{}", canonical);

        // the reachable graph comes up non-trivially under a micro budget
        let enumd = enumerate(&model, &micro_enum_config())
            .map_err(|e| TestCaseError::Fail(format!("{canonical}: {e}")))?;
        prop_assert!(enumd.graph.state_count() > 1, "{}: graph collapsed", canonical);
        if enumd.truncated.is_none() {
            prop_assert!(
                enumd.graph.edge_count() >= enumd.graph.state_count(),
                "{}: complete graph with dangling states",
                canonical
            );
        }
    }
}
