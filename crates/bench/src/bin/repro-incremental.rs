//! Incremental re-enumeration over the PP control model: how much of a
//! full enumeration can delta splicing skip for a single-site mutant?
//!
//! Enumerates the reference once, then runs every sampled model mutant
//! through **both** paths — a full `enumerate_with` and
//! `enumerate_delta_with` against the resident reference — and verifies
//! the splice contract on each: graph dump, stats and truncation must be
//! byte-identical. Records per-mutant wall-clock, evaluated-transition
//! counts and splice ratios, prints the work-reduction table, and writes
//! `BENCH_incremental.json`.
//!
//! Exits non-zero if any mutant's delta result differs from its full
//! enumeration, if any compatible mutant fell back to a full sweep, or
//! (at micro scale) if the median evaluated-transition reduction falls
//! below the seeded 5× floor.
//!
//! ```sh
//! cargo run --release -p archval-bench --bin repro-incremental micro
//! ```

use std::time::Instant;

use serde::{Deserialize, Serialize};

use archval_bench::{emit_bench_json, scale_from_args, BenchError};
use archval_exec::StepProgram;
use archval_fsm::{
    apply_mutation, dump_enum_result, enumerate_delta_opts, enumerate_delta_with, enumerate_with,
    mutation_sites, DeltaOptions, EnumConfig, RefDense,
};
use archval_pp::{pp_control_model, PpScale};

/// Median evaluated-transition reduction the delta path must deliver for
/// single-site mutants of the micro model. A mutation of one expression
/// dirties a handful of control variables; anything under this floor
/// means the dependence sets have degenerated to "everything observes
/// everything".
const MEDIAN_REDUCTION_FLOOR: f64 = 5.0;

/// Mutants sampled from the site list (evenly strided so every fault
/// class — stuck vars, stuck bits, arena faults — stays represented).
const MUTANT_CAP: usize = 48;

/// One mutant's full-versus-delta comparison in `BENCH_incremental.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MutantRow {
    label: String,
    states: u64,
    full_ms: f64,
    delta_ms: f64,
    /// `EnumStats::transitions_evaluated` of the full run.
    full_transitions: u64,
    /// `DeltaStats::evaluated_transitions` — what the variant engine
    /// actually stepped.
    delta_transitions: u64,
    /// Transitions mirrored from the reference without evaluation.
    mirrored_transitions: u64,
    /// `full_transitions / max(delta_transitions, 1)`.
    reduction: f64,
    /// Fraction of states spliced verbatim from the reference.
    splice_ratio: f64,
}

/// Everything `BENCH_incremental.json` records.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IncrementalBench {
    scale: String,
    reference_states: u64,
    reference_edges: u64,
    reference_ms: f64,
    /// One-off cost of the dense per-code successor table, amortized
    /// across the whole mutant pool.
    dense_table_ms: f64,
    mutant_count: usize,
    /// Every mutant's delta result matched its full enumeration
    /// byte-for-byte (the run aborts before emitting otherwise, so this
    /// is always `true` in an emitted file — recorded for dashboards).
    byte_identical: bool,
    full_wall_ms: f64,
    delta_wall_ms: f64,
    full_transitions_total: u64,
    delta_transitions_total: u64,
    median_reduction: f64,
    median_splice_ratio: f64,
    mutants: Vec<MutantRow>,
}

fn main() {
    archval_bench::run("repro-incremental", body);
}

fn body() -> Result<(), BenchError> {
    let scale = scale_from_args();
    let model = pp_control_model(&scale)?;
    let program = StepProgram::compile(&model);
    let config = EnumConfig::default();

    eprintln!("enumerating the reference at {scale:?} ...");
    let started = Instant::now();
    let reference = enumerate_with(&model, &config, &program)?;
    let reference_ms = started.elapsed().as_secs_f64() * 1e3;
    if !reference.is_complete() {
        return Err(BenchError::Invalid("reference enumeration truncated".into()));
    }
    let ref_states = reference.graph.state_count() as u64;
    let ref_edges = reference.graph.edge_count() as u64;
    eprintln!(
        "reference: {ref_states} states, {ref_edges} edges, \
         {} transitions evaluated ({reference_ms:.0} ms)",
        reference.stats.transitions_evaluated
    );

    // One extra reference sweep builds the dense per-code successor table;
    // its cost is amortized across every mutant below (a campaign pays it
    // once for its whole pool).
    let started = Instant::now();
    let dense = RefDense::compute(&model, &reference, &program)?
        .ok_or_else(|| BenchError::Invalid("reference too large for a dense table".into()))?;
    let dense_ms = started.elapsed().as_secs_f64() * 1e3;
    eprintln!("dense reference table built in {dense_ms:.0} ms");

    // Identity sanity check: diffing the model against itself must splice
    // every state and evaluate nothing.
    let identity = enumerate_delta_with(
        &model,
        &reference,
        &model,
        &config,
        &program,
        Some(program.dep_sets()),
    )?;
    if identity.delta.evaluated_transitions != 0
        || identity.delta.spliced_states as u64 != ref_states
    {
        return Err(BenchError::Invalid(format!(
            "identity delta evaluated {} transitions and spliced {} of {ref_states} states; \
             expected a pure splice",
            identity.delta.evaluated_transitions, identity.delta.spliced_states
        )));
    }

    let sites = mutation_sites(&model);
    let stride = sites.len().div_ceil(MUTANT_CAP).max(1);
    let sampled: Vec<_> = sites.iter().step_by(stride).collect();
    eprintln!("running {} of {} mutation sites through both paths ...", sampled.len(), sites.len());

    let mut rows: Vec<MutantRow> = Vec::with_capacity(sampled.len());
    for site in &sampled {
        let mutant = apply_mutation(&model, site).map_err(|e| {
            BenchError::Invalid(format!("site {} failed to apply: {e}", site.label()))
        })?;
        let factory = StepProgram::compile(&mutant);

        let t = Instant::now();
        let full = enumerate_with(&mutant, &config, &factory);
        let full_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let delta = enumerate_delta_opts(
            &model,
            &reference,
            &mutant,
            &config,
            &factory,
            DeltaOptions { deps: Some(program.dep_sets()), dense: Some(&dense) },
        );
        let delta_ms = t.elapsed().as_secs_f64() * 1e3;

        let (full, d) = match (full, delta) {
            (Ok(full), Ok(d)) => (full, d),
            // both paths must fail identically — that's part of the contract
            (Err(f), Err(d)) if f.to_string() == d.to_string() => continue,
            (full, delta) => {
                return Err(BenchError::Invalid(format!(
                    "mutant {}: full and delta paths disagree on failure: full {:?}, delta {:?}",
                    site.label(),
                    full.map(|_| "ok").map_err(|e| e.to_string()),
                    delta.map(|_| "ok").map_err(|e| e.to_string()),
                )));
            }
        };

        if d.delta.fallback {
            return Err(BenchError::Invalid(format!(
                "mutant {} is a single-site edit of the reference but the delta path fell back",
                site.label()
            )));
        }
        // stats.elapsed / approx_memory_bytes are wall-clock and heap
        // measurements; the contract covers the deterministic fields
        if full.truncated != d.result.truncated
            || full.stats.states != d.result.stats.states
            || full.stats.bits_per_state != d.result.stats.bits_per_state
            || full.stats.edges != d.result.stats.edges
            || full.stats.transitions_evaluated != d.result.stats.transitions_evaluated
            || full.stats.max_depth != d.result.stats.max_depth
            || dump_enum_result(&mutant, &full) != dump_enum_result(&mutant, &d.result)
        {
            return Err(BenchError::Invalid(format!(
                "mutant {}: delta result is not byte-identical to the full enumeration",
                site.label()
            )));
        }

        let states = full.graph.state_count() as u64;
        rows.push(MutantRow {
            label: site.label(),
            states,
            full_ms,
            delta_ms,
            full_transitions: full.stats.transitions_evaluated,
            delta_transitions: d.delta.evaluated_transitions,
            mirrored_transitions: d.delta.mirrored_transitions,
            reduction: full.stats.transitions_evaluated as f64
                / d.delta.evaluated_transitions.max(1) as f64,
            splice_ratio: d.delta.spliced_states as f64 / (states as f64).max(1.0),
        });
    }
    if rows.is_empty() {
        return Err(BenchError::Invalid("no mutant produced a comparable enumeration".into()));
    }

    println!("== incremental re-enumeration ({scale:?}, {} mutants) ==", rows.len());
    println!(
        "{:<28} {:>8} {:>12} {:>12} {:>10} {:>8}",
        "mutant", "states", "full trans", "delta trans", "reduction", "spliced"
    );
    for r in &rows {
        println!(
            "{:<28} {:>8} {:>12} {:>12} {:>9.1}x {:>7.0}%",
            r.label,
            r.states,
            r.full_transitions,
            r.delta_transitions,
            r.reduction,
            r.splice_ratio * 100.0
        );
    }

    let median_reduction = median(rows.iter().map(|r| r.reduction));
    let median_splice = median(rows.iter().map(|r| r.splice_ratio));
    let full_wall_ms: f64 = rows.iter().map(|r| r.full_ms).sum();
    let delta_wall_ms: f64 = rows.iter().map(|r| r.delta_ms).sum();
    let full_total: u64 = rows.iter().map(|r| r.full_transitions).sum();
    let delta_total: u64 = rows.iter().map(|r| r.delta_transitions).sum();
    println!(
        "median reduction {median_reduction:.1}x, median splice {:.0}%, \
         wall-clock {full_wall_ms:.0} ms full vs {delta_wall_ms:.0} ms delta",
        median_splice * 100.0
    );

    let mutant_count = rows.len();
    emit_bench_json(
        "incremental",
        &IncrementalBench {
            scale: format!("{scale:?}"),
            reference_states: ref_states,
            reference_edges: ref_edges,
            reference_ms,
            dense_table_ms: dense_ms,
            mutant_count,
            byte_identical: true,
            full_wall_ms,
            delta_wall_ms,
            full_transitions_total: full_total,
            delta_transitions_total: delta_total,
            median_reduction,
            median_splice_ratio: median_splice,
            mutants: rows,
        },
    )?;

    // The headline acceptance gate, checked after the JSON lands so a
    // regression still leaves the numbers on disk for inspection.
    if scale == PpScale::micro() && median_reduction < MEDIAN_REDUCTION_FLOOR {
        return Err(BenchError::Invalid(format!(
            "median evaluated-transition reduction {median_reduction:.2}x is below the \
             {MEDIAN_REDUCTION_FLOOR}x floor for single-site mutants at micro scale"
        )));
    }
    Ok(())
}

/// Median of an f64 sequence (mean of the middle pair for even lengths).
fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(|a, b| a.total_cmp(b));
    match v.len() {
        0 => 0.0,
        n if n % 2 == 1 => v[n / 2],
        n => (v[n / 2 - 1] + v[n / 2]) / 2.0,
    }
}
