//! The typed outcome taxonomy: what happened to one mutant.

use serde::{Deserialize, Serialize};

/// The outcome of running one stimulus strategy against one mutant.
///
/// Every `(mutant, strategy)` cell of a campaign gets exactly one verdict;
/// there is no "crashed the campaign" outcome by construction. Verdict
/// payloads never contain wall-clock readings, so a resumed campaign
/// reports byte-identically to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The strategy exposed the fault: reference and mutant diverged (in
    /// state, or one erred where the other did not) after `cycles`
    /// replayed cycles.
    Killed {
        /// Replay cycles spent before the first observable divergence.
        cycles: u64,
    },
    /// The strategy's whole stimulus budget replayed without an observable
    /// difference.
    Survived,
    /// The mutant's state space blew past the enumeration budget, so no
    /// strategy was replayed against it.
    StateExplosion,
    /// The mutant exceeded the wall-clock deadline (a wedged engine, or an
    /// enumeration too slow to finish under the budget).
    Timeout,
    /// The mutant's engine panicked; the panic was caught and isolated.
    Panicked,
}

impl Verdict {
    /// Whether this verdict counts toward the kill-rate denominator.
    ///
    /// Kill rate is `killed / (killed + survived)`: explosion, timeout and
    /// panic cells say nothing about a strategy's fault-finding power (the
    /// mutant degenerated before stimuli could discriminate), so they are
    /// excluded rather than counted either way.
    pub fn scores(&self) -> bool {
        matches!(self, Verdict::Killed { .. } | Verdict::Survived)
    }
}

/// The outcome of re-enumerating one mutant under the campaign budget.
///
/// Like [`Verdict`], payloads are wall-clock-free: a `States`- or
/// `Transitions`-truncated sequential enumeration is deterministic, but a
/// deadline cut is not, so `Timeout` carries nothing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnumOutcome {
    /// Enumeration finished inside the budget.
    Completed {
        /// Reachable states of the mutant.
        states: u64,
        /// Arcs of the mutant's state graph.
        edges: u64,
    },
    /// The state or transition budget fired: the mutant's reachable space
    /// is (at least) `states` states — a state explosion.
    Exploded {
        /// States discovered before the cut.
        states: u64,
    },
    /// The enumeration deadline passed before the search finished.
    Timeout,
    /// The mutant's engine panicked during enumeration.
    Panicked,
    /// Enumeration failed with a typed model error (e.g. a mutation that
    /// introduced a division by zero on the enumerated paths).
    Failed {
        /// Display form of the underlying error.
        error: String,
    },
}

impl EnumOutcome {
    /// The blanket verdict this outcome forces on every strategy, if any.
    /// `Completed` and `Failed` return `None`: strategies still replay
    /// (lockstep replay does not need the mutant's graph, and an
    /// enumeration error does not prevent bounded replay).
    pub fn blanket_verdict(&self) -> Option<Verdict> {
        match self {
            EnumOutcome::Exploded { .. } => Some(Verdict::StateExplosion),
            EnumOutcome::Timeout => Some(Verdict::Timeout),
            EnumOutcome::Panicked => Some(Verdict::Panicked),
            EnumOutcome::Completed { .. } | EnumOutcome::Failed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_json_round_trips() {
        for v in [
            Verdict::Killed { cycles: 42 },
            Verdict::Survived,
            Verdict::StateExplosion,
            Verdict::Timeout,
            Verdict::Panicked,
        ] {
            let s = serde_json::to_string(&v).unwrap();
            let back: Verdict = serde_json::from_str(&s).unwrap();
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn enum_outcome_json_round_trips() {
        for o in [
            EnumOutcome::Completed { states: 10, edges: 20 },
            EnumOutcome::Exploded { states: 9000 },
            EnumOutcome::Timeout,
            EnumOutcome::Panicked,
            EnumOutcome::Failed { error: "division by zero".into() },
        ] {
            let s = serde_json::to_string(&o).unwrap();
            let back: EnumOutcome = serde_json::from_str(&s).unwrap();
            assert_eq!(back, o, "{s}");
        }
    }

    #[test]
    fn scoring_matrix() {
        assert!(Verdict::Killed { cycles: 1 }.scores());
        assert!(Verdict::Survived.scores());
        assert!(!Verdict::StateExplosion.scores());
        assert!(!Verdict::Timeout.scores());
        assert!(!Verdict::Panicked.scores());
    }

    #[test]
    fn blanket_verdicts() {
        assert_eq!(EnumOutcome::Timeout.blanket_verdict(), Some(Verdict::Timeout));
        assert_eq!(
            EnumOutcome::Exploded { states: 5 }.blanket_verdict(),
            Some(Verdict::StateExplosion)
        );
        assert_eq!(EnumOutcome::Panicked.blanket_verdict(), Some(Verdict::Panicked));
        assert_eq!(EnumOutcome::Completed { states: 1, edges: 1 }.blanket_verdict(), None);
        assert_eq!(EnumOutcome::Failed { error: String::new() }.blanket_verdict(), None);
    }
}
