//! Replaying a stimulus on the RTL simulator.

use std::fmt;

use archval_pp::rtl::{ExtIn, Forces, RtlSim};
use archval_pp::{BugSet, CtrlIn};

use crate::mapping::Stimulus;

/// The result of a successful replay.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The RTL simulator after the run (retirement log, registers, memory).
    pub rtl: RtlSim,
    /// The control inputs actually sampled each cycle (for coverage
    /// accounting).
    pub sampled: Vec<CtrlIn>,
}

/// Replay failure: the design's control left the tour's predicted path.
///
/// On a bug-free design this indicates a modelling discrepancy between the
/// RTL and the extracted FSM — exactly the class of problem the paper's
/// methodology exists to surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// The cycle at which control diverged.
    pub cycle: usize,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "control divergence at cycle {}: {}", self.cycle, self.detail)
    }
}

impl std::error::Error for ReplayError {}

/// Drives the RTL simulator through a stimulus, forcing the interface
/// conditions of every tour edge (the paper's force/release analogue).
///
/// With an empty `bugs` set, the control trajectory is checked against the
/// tour cycle by cycle; with bugs injected the check is skipped (a bug may
/// legitimately derail control — e.g. Bug #1 corrupts fetched
/// instructions) and divergence shows up in the architectural comparison
/// instead.
///
/// # Errors
///
/// Returns [`ReplayError`] if the bug-free design's control state fails to
/// follow the tour.
pub fn replay(stim: &Stimulus, bugs: BugSet) -> Result<ReplayOutcome, ReplayError> {
    let mut rtl = RtlSim::new(stim.scale, bugs, &stim.program, stim.inbox.clone());
    let check = bugs.is_empty();
    let mut sampled = Vec::with_capacity(stim.cycles.len());
    for (cycle, plan) in stim.cycles.iter().enumerate() {
        let ext = ExtIn {
            inbox_ready: plan.ctrl.inbox_ready,
            outbox_ready: plan.ctrl.outbox_ready,
            mem_ready: plan.ctrl.mem_ready,
        };
        let forces = Forces {
            ihit: Some(plan.ctrl.ihit),
            dhit: Some(plan.ctrl.dhit),
            victim_dirty: Some(plan.ctrl.victim_dirty),
            same_line: Some(plan.ctrl.same_line),
        };
        let inputs = rtl.step(ext, forces);
        sampled.push(inputs);
        if check && *rtl.ctrl() != plan.expect_after {
            return Err(ReplayError {
                cycle,
                detail: format!(
                    "expected {:?}, got {:?} under {:?}",
                    plan.expect_after,
                    rtl.ctrl(),
                    plan.ctrl
                ),
            });
        }
    }
    Ok(ReplayOutcome { rtl, sampled })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::trace_to_stimulus;
    use archval_fsm::{enumerate, EnumConfig};
    use archval_pp::testkit;
    use archval_tour::{generate_tours, TourConfig};

    fn micro_stimuli(limit: Option<u64>) -> Vec<Stimulus> {
        let (scale, model) = testkit::micro_model();
        let enumd = enumerate(&model, &EnumConfig::default()).unwrap();
        let tours = generate_tours(&enumd.graph, &TourConfig { instruction_limit: limit });
        tours
            .traces()
            .iter()
            .take(8)
            .enumerate()
            .map(|(i, t)| trace_to_stimulus(&scale, &model, &tours, t, i as u64))
            .collect()
    }

    #[test]
    fn bug_free_replay_follows_every_tour() {
        for (i, stim) in micro_stimuli(None).into_iter().enumerate() {
            let out = replay(&stim, BugSet::none()).unwrap_or_else(|e| panic!("trace {i}: {e}"));
            assert_eq!(out.sampled.len(), stim.cycles.len());
        }
    }

    #[test]
    fn bug_free_replay_with_trace_limit() {
        for stim in micro_stimuli(Some(50)) {
            replay(&stim, BugSet::none()).unwrap();
        }
    }

    #[test]
    fn live_interface_bits_match_the_tour() {
        // forced bits (hits, readiness) must equal the tour's choices on
        // every cycle where they are live
        let stim = &micro_stimuli(None)[0];
        let out = replay(stim, BugSet::none()).unwrap();
        for (plan, got) in stim.cycles.iter().zip(&out.sampled) {
            assert_eq!(plan.ctrl.ihit, got.ihit);
            assert_eq!(plan.ctrl.inbox_ready, got.inbox_ready);
            assert_eq!(plan.ctrl.outbox_ready, got.outbox_ready);
            assert_eq!(plan.ctrl.mem_ready, got.mem_ready);
        }
    }
}
