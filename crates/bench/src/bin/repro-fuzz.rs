//! Coverage-guided fuzzing versus uniform random versus transition tours,
//! under equal cycle budgets.
//!
//! The comparison the fuzzing subsystem exists for: tours need the
//! enumerated graph and cover every arc by construction; the fuzzer only
//! needs coverage feedback and closes most of the gap; uniform random
//! trails both. Exits non-zero if the fuzzer fails to beat random at
//! equal budget, so CI can use this binary as the smoke gate.
//!
//! ```sh
//! cargo run --release -p archval-bench --bin repro-fuzz [scale] [threads]
//! ```
//!
//! `--engine <compiled|tree>` selects the step engine for enumeration
//! and replay (bit-identical results; compiled is the default).

use serde::{Deserialize, Serialize};

use archval::Engine;
use archval_bench::{
    emit_bench_json, engine_from_args, scale_from_args, threads_from_args, BenchError,
};
use archval_exec::StepProgram;
use archval_fsm::{enumerate_with, EngineFactory, EnumConfig};
use archval_pp::pp_control_model;
use archval_sim::baseline::{random_coverage_run_with, tour_coverage_run, CoverageRun};
use archval_sim::fuzz::{fuzz_coverage_run_with, PpFuzzConfig};
use archval_tour::{generate_tours, TourConfig};

/// Everything `BENCH_fuzz.json` records.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FuzzBench {
    scale: String,
    threads: usize,
    seed: u64,
    budget_cycles: u64,
    engine: String,
    compile_seconds: f64,
    runs: Vec<CoverageRun>,
    wall_seconds: f64,
}

fn main() {
    archval_bench::run("repro-fuzz", body);
}

fn body() -> Result<(), BenchError> {
    let scale = scale_from_args();
    let threads = threads_from_args();
    let engine = engine_from_args();
    let seed = 0xF0CC_5EED_u64;
    let started = std::time::Instant::now();

    eprintln!("enumerating at {scale:?} with the {engine} engine ...");
    let model = pp_control_model(&scale)?;
    let (program, compile_seconds) = match engine {
        Engine::Compiled | Engine::Batched => {
            let t0 = std::time::Instant::now();
            let p = StepProgram::compile(&model);
            (Some(p), t0.elapsed().as_secs_f64())
        }
        Engine::Tree => (None, 0.0),
    };
    let factory: &dyn EngineFactory = match &program {
        Some(p) => p,
        None => &model,
    };
    let lanes = if engine == Engine::Batched { archval::DEFAULT_LANES } else { 1 };
    let enumd = enumerate_with(
        &model,
        &EnumConfig { batch_lanes: lanes, ..EnumConfig::default() },
        factory,
    )?;

    // the tour run sets the common budget: the cycles a full transition
    // tour costs are what random and fuzzing get to spend too
    let tours = generate_tours(&enumd.graph, &TourConfig::default());
    let tour_run = tour_coverage_run(&enumd, &tours);
    let budget = tour_run.cycles;

    eprintln!("fuzzing for {budget} cycles with {threads} worker thread(s) ...");
    let fuzz_run = fuzz_coverage_run_with(
        &model,
        &enumd,
        &PpFuzzConfig { cycles: budget, seed, threads, ..PpFuzzConfig::default() },
        factory,
    )?;
    let random_run = random_coverage_run_with(&scale, &model, &enumd, budget, 0.5, seed, factory)?;

    println!("== coverage-guided fuzzing vs baselines ({scale:?}, equal budget) ==");
    println!("{:<28} {:>10} {:>10} {:>10} {:>9}", "", "arcs", "of", "cycles", "coverage");
    for run in [&tour_run, &fuzz_run, &random_run] {
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>8.1}%",
            run.name,
            run.arcs_covered,
            run.arcs_total,
            run.cycles,
            100.0 * run.final_fraction()
        );
    }

    let bench = FuzzBench {
        scale: format!("{scale:?}"),
        threads,
        seed,
        budget_cycles: budget,
        engine: engine.to_string(),
        compile_seconds,
        runs: vec![tour_run.clone(), fuzz_run.clone(), random_run.clone()],
        wall_seconds: started.elapsed().as_secs_f64(),
    };
    emit_bench_json("fuzz", &bench)?;

    if fuzz_run.arcs_covered < random_run.arcs_covered {
        return Err(BenchError::Invalid(format!(
            "fuzzing covered {} arcs but uniform random covered {} in the same budget",
            fuzz_run.arcs_covered, random_run.arcs_covered
        )));
    }
    println!(
        "\nfuzzing beats uniform random by {} arcs and closes {:.1}% of the tour gap \
         without needing the tours",
        fuzz_run.arcs_covered - random_run.arcs_covered,
        if tour_run.arcs_covered > random_run.arcs_covered {
            100.0 * (fuzz_run.arcs_covered - random_run.arcs_covered) as f64
                / (tour_run.arcs_covered - random_run.arcs_covered) as f64
        } else {
            100.0
        }
    );
    Ok(())
}
