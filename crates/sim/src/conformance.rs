//! The Figure 4.1 / 4.2 conformance examples.
//!
//! Figure 4.1: an implementation with *more* behaviours than the
//! specification (an extra `c`-labelled arc into a third state) — touring
//! the implementation's enumerated graph exercises the extra arc and the
//! comparison exposes the difference.
//!
//! Figure 4.2: an implementation with *fewer* behaviours — it erroneously
//! performs the same transition for inputs `a` and `c`. Under the default
//! first-label edge policy only one of the aliased conditions labels the
//! arc, so the wrong `c` transition may never be exercised; the paper's
//! proposed fix of capturing all unique conditions (our
//! [`EdgePolicy::AllLabels`]) restores detection.

use archval_fsm::builder::ModelBuilder;
use archval_fsm::enumerate::{enumerate, EnumConfig};
use archval_fsm::graph::EdgePolicy;
use archval_fsm::{Model, SyncSim};
use archval_tour::{generate_tours, TourConfig};
use serde::{Deserialize, Serialize};

/// Outcome of a conformance experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConformanceOutcome {
    /// Edge policy used during enumeration.
    pub policy_all_labels: bool,
    /// Arcs in the implementation's state graph.
    pub impl_arcs: usize,
    /// Whether the tour of the implementation exercised a transition on
    /// which the specification disagrees.
    pub detected: bool,
}

/// Inputs: 0 = `a`, 1 = `b`, 2 = `c`.
const INPUT_A: u64 = 0;
const INPUT_B: u64 = 1;
const INPUT_C: u64 = 2;

/// Figure 4.1 specification: two states; `a` holds in A, `b` moves A->B,
/// `b` holds in B... the exact labelling follows the figure: A --a--> A,
/// A --b--> B, B --b--> B, B --a--> A.
fn spec_fig41() -> Model {
    let mut b = ModelBuilder::new("spec41");
    let inp = b.choice("input", 3);
    let s = b.state_var("s", 2, 0);
    let cur = b.var_expr(s);
    let i = b.choice_expr(inp);
    let is_b = b.eq_const(i, INPUT_B);
    let is_a = b.eq_const(i, INPUT_A);
    let in_a = b.eq_const(cur, 0);
    // from A: b -> B, else stay; from B: a -> A, else stay
    let from_a = b.ternary(is_b, b.constant(1), b.constant(0));
    let from_b = b.ternary(is_a, b.constant(0), b.constant(1));
    b.set_next(s, b.ternary(in_a, from_a, from_b));
    b.build().expect("spec41 builds")
}

/// Figure 4.1 implementation: as the spec, but input `c` in state B
/// erroneously reaches a third state C (with `d` returning to A) — *more*
/// behaviours than specified.
fn impl_fig41() -> Model {
    let mut b = ModelBuilder::new("impl41");
    let inp = b.choice("input", 3);
    let s = b.state_var("s", 3, 0);
    let cur = b.var_expr(s);
    let i = b.choice_expr(inp);
    let is_a = b.eq_const(i, INPUT_A);
    let is_b = b.eq_const(i, INPUT_B);
    let is_c = b.eq_const(i, INPUT_C);
    let in_a = b.eq_const(cur, 0);
    let in_b = b.eq_const(cur, 1);
    let from_a = b.ternary(is_b, b.constant(1), b.constant(0));
    // the erroneous extra behaviour: B --c--> C
    let from_b = b.select(vec![(is_a, b.constant(0)), (is_c, b.constant(2))], b.constant(1));
    // C returns to A on any input (the figure's completion)
    let from_c = b.constant(0);
    b.set_next(s, b.select(vec![(in_a, from_a), (in_b, from_b)], from_c));
    b.build().expect("impl41 builds")
}

/// Figure 4.2 specification: A --a--> B, A --c--> C (distinct targets),
/// plus b self-loops.
fn spec_fig42() -> Model {
    let mut b = ModelBuilder::new("spec42");
    let inp = b.choice("input", 3);
    let s = b.state_var("s", 3, 0);
    let cur = b.var_expr(s);
    let i = b.choice_expr(inp);
    let is_a = b.eq_const(i, INPUT_A);
    let is_c = b.eq_const(i, INPUT_C);
    let in_a = b.eq_const(cur, 0);
    let from_a = b.select(vec![(is_a, b.constant(1)), (is_c, b.constant(2))], b.constant(0));
    // B and C return to A on b, else hold
    let is_b = b.eq_const(i, INPUT_B);
    let hold = b.ternary(is_b, b.constant(0), cur);
    b.set_next(s, b.ternary(in_a, from_a, hold));
    b.build().expect("spec42 builds")
}

/// Figure 4.2 implementation: erroneously performs the *same* transition
/// for inputs `a` and `c` (both reach B) — *fewer* behaviours.
fn impl_fig42() -> Model {
    let mut b = ModelBuilder::new("impl42");
    let inp = b.choice("input", 3);
    let s = b.state_var("s", 3, 0);
    let cur = b.var_expr(s);
    let i = b.choice_expr(inp);
    let is_a = b.eq_const(i, INPUT_A);
    let is_c = b.eq_const(i, INPUT_C);
    let in_a = b.eq_const(cur, 0);
    let a_or_c = b.or(is_a, is_c);
    let from_a = b.ternary(a_or_c, b.constant(1), b.constant(0));
    let is_b = b.eq_const(i, INPUT_B);
    let hold = b.ternary(is_b, b.constant(0), cur);
    b.set_next(s, b.ternary(in_a, from_a, hold));
    b.build().expect("impl42 builds")
}

/// Tours `implementation`'s enumerated graph (under `policy`) and locksteps
/// `specification`; returns whether any toured transition ends in states
/// that disagree observationally. Observation: the state index itself (the
/// examples are Moore machines whose outputs are their states).
fn run_conformance(
    implementation: &Model,
    specification: &Model,
    policy: EdgePolicy,
) -> ConformanceOutcome {
    let enumd =
        enumerate(implementation, &EnumConfig { edge_policy: policy, ..EnumConfig::default() })
            .expect("enumeration");
    let tours = generate_tours(&enumd.graph, &TourConfig::default());
    let mut detected = false;
    'traces: for trace in tours.traces() {
        let mut imp = SyncSim::new(implementation);
        let mut spec = SyncSim::new(specification);
        for step in tours.resolve(trace) {
            let choices = implementation.decode_choices(step.label);
            imp.step(&choices).expect("impl step");
            spec.step(&choices).expect("spec step");
            if imp.state()[0] != spec.state()[0] {
                detected = true;
                break 'traces;
            }
        }
    }
    ConformanceOutcome {
        policy_all_labels: policy == EdgePolicy::AllLabels,
        impl_arcs: enumd.graph.edge_count(),
        detected,
    }
}

/// Figure 4.1: more behaviours in the implementation — detected under the
/// default policy.
pub fn more_behaviors_experiment() -> ConformanceOutcome {
    run_conformance(&impl_fig41(), &spec_fig41(), EdgePolicy::FirstLabel)
}

/// Figure 4.2: fewer behaviours — the outcome under each edge policy.
/// Returns `(first_label, all_labels)`.
pub fn fewer_behaviors_experiment() -> (ConformanceOutcome, ConformanceOutcome) {
    let first = run_conformance(&impl_fig42(), &spec_fig42(), EdgePolicy::FirstLabel);
    let all = run_conformance(&impl_fig42(), &spec_fig42(), EdgePolicy::AllLabels);
    (first, all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_1_extra_behaviour_is_detected() {
        let outcome = more_behaviors_experiment();
        assert!(outcome.detected, "the extra `c` arc must be exercised and exposed");
    }

    #[test]
    fn figure_4_2_aliased_condition_missed_then_caught() {
        let (first, all) = fewer_behaviors_experiment();
        assert!(
            !first.detected,
            "under first-label arcs the aliased `c` condition is never exercised"
        );
        assert!(all.detected, "capturing all unique conditions restores detection");
        assert!(all.impl_arcs > first.impl_arcs, "all-labels records more arcs");
    }

    #[test]
    fn models_have_expected_shapes() {
        let enumd = enumerate(&impl_fig41(), &EnumConfig::default()).expect("enumeration");
        assert_eq!(enumd.graph.state_count(), 3);
        let enumd2 = enumerate(&impl_fig42(), &EnumConfig::default()).expect("enumeration");
        assert_eq!(enumd2.graph.state_count(), 2, "the aliased impl never reaches C");
    }
}
