//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — benchmark
//! groups, `bench_with_input`/`bench_function`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple wall-clock harness: a warm-up iteration followed by
//! `sample_size` timed iterations, reporting mean time and throughput.
//! No statistics, plots or baselines.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Work-per-iteration declaration used to derive a rate from timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level harness.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup { _parent: self, sample_size: self.default_sample_size, throughput: None }
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { total: Duration::ZERO, iterations: 0 };
        f(&mut b, input); // warm-up; also captures one measurement
        for _ in 1..self.sample_size {
            f(&mut b, input);
        }
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { total: Duration::ZERO, iterations: 0 };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (parity with criterion; nothing to flush here).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iterations == 0 {
            println!("  {id}: no iterations recorded");
            return;
        }
        let mean = b.total.as_secs_f64() / b.iterations as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!(", {:.0} elem/s", n as f64 / mean),
            Some(Throughput::Bytes(n)) => format!(", {:.0} B/s", n as f64 / mean),
            None => String::new(),
        };
        println!("  {id}: {:.3} ms/iter{rate} ({} iters)", mean * 1e3, b.iterations);
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine`, keeping its output alive until
    /// after the clock stops (mirrors criterion's drop semantics).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.total += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

/// Prevents the optimizer from discarding a value (best-effort stand-in).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-running functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}
