//! The campaign runner: budgeted, panic-isolated, checkpointed.
//!
//! A campaign processes every generated mutant through two stages:
//!
//! 1. **re-enumeration** — the mutant's reachable state space is explored
//!    under the campaign [`RunBudget`]'s enumeration slice. Explosions,
//!    deadline overruns and panics become blanket verdicts for every
//!    strategy (see [`EnumOutcome::blanket_verdict`]);
//! 2. **strategy replay** — each stimulus suite (tours / fuzz / random,
//!    built once from the reference) replays in lockstep against a
//!    reference engine and the mutant engine. The first observable
//!    divergence — different successor state, or one side erring where
//!    the other does not — kills the mutant for that strategy.
//!
//! Both stages run inside [`run_isolated`], so a panicking mutant yields
//! [`Verdict::Panicked`] while the rest of the campaign proceeds. Every
//! finished mutant is appended to the JSONL checkpoint (when configured)
//! and flushed before the next one starts, so a killed campaign resumes
//! from its last completed mutant; resumed and uninterrupted campaigns
//! produce byte-identical reports because no outcome payload carries
//! wall-clock readings.
//!
//! Checkpoint resume is tear-tolerant at the tail: a crash can leave the
//! *final* line short (the append tore mid-write), so an unparseable or
//! unterminated last line is truncated away and that mutant re-runs —
//! re-running is deterministic, so the resumed report is still
//! byte-identical. Corruption anywhere *before* the tail cannot be a
//! torn append and stays a typed [`Error::Checkpoint`].

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use archval_exec::{apply_program_mutation, StepProgram};
use archval_fsm::engine::EngineFactory;
use archval_fsm::{
    apply_mutation, enumerate, enumerate_delta_opts, enumerate_with, DeltaOptions, DepSets,
    EnumConfig, EnumResult, Model, RefDense, SyncSim, Truncation,
};

use crate::budget::{CancelToken, RunBudget};
use crate::chaos::ChaosFactory;
use crate::guard::run_isolated;
use crate::mutant::{generate_mutants, MutantSpec};
use crate::stimulus::{build_suites, StimulusSuite, Strategy, SuiteConfig};
use crate::verdict::{EnumOutcome, Verdict};
use crate::Error;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of mutants to generate (chaos mutants included when
    /// `include_chaos` is set). Fewer are run when the design has fewer
    /// mutation sites.
    pub mutant_limit: usize,
    /// Append the three chaos mutants (explode / wedge / panic) that
    /// continuously prove the campaign's isolation machinery.
    pub include_chaos: bool,
    /// Per-mutant resource envelope.
    pub budget: RunBudget,
    /// Stimulus-suite sizing.
    pub suite: SuiteConfig,
    /// Worker threads processing mutants (each mutant runs sequentially
    /// inside one worker, keeping its outcome deterministic).
    pub threads: usize,
    /// JSONL checkpoint path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Stop claiming new mutants after this many *newly* completed ones
    /// (exact with one worker, a lower bound with several) — the hook the
    /// interrupted-campaign tests and the resume demo use.
    pub halt_after: Option<usize>,
    /// Per-state stall of the wedge chaos mutant; keep well above the
    /// deadline/states ratio so the wedge reliably times out.
    pub wedge_sleep: Duration,
    /// Batch width for each mutant's budgeted re-enumeration (stage 1);
    /// `1` (the default) runs the scalar sweep. Any width yields the
    /// same typed verdicts, truncation points and checkpoint bytes — the
    /// enumerator caps batches at budget-check boundaries.
    pub batch_lanes: usize,
    /// Re-enumerate model-level mutants incrementally against the
    /// reference enumeration (stage 1 runs
    /// [`enumerate_delta_with`] instead of a full sweep), splicing the
    /// reference's successor rows for states the mutation provably
    /// cannot affect. The spliced graph is byte-identical to a full
    /// re-enumeration — verdicts, reports and checkpoint bytes do not
    /// change, only wall-clock does. Full sweeps are used when this is
    /// unset or the reference enumeration is truncated; program-level
    /// and chaos mutants always sweep fully (they mutate the engine,
    /// not the model, so the model-level dependence argument does not
    /// apply to them).
    pub delta: bool,
    /// Cooperative cancellation checked at the per-mutant budget
    /// checkpoint: once the token reports cancelled, workers stop
    /// claiming new mutants and the report comes back with
    /// `complete = false`, its checkpoint intact for a later resume.
    /// The in-flight mutant still finishes under its (possibly clamped)
    /// [`RunBudget`] — cancellation never tears a checkpoint line.
    pub cancel: Option<CancelToken>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            mutant_limit: 50,
            include_chaos: true,
            budget: RunBudget::default(),
            suite: SuiteConfig::default(),
            threads: 1,
            checkpoint: None,
            halt_after: None,
            wedge_sleep: Duration::from_millis(25),
            batch_lanes: 1,
            delta: true,
            cancel: None,
        }
    }
}

/// One strategy's verdict on one mutant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategyVerdict {
    /// The stimulus strategy.
    pub strategy: Strategy,
    /// What it concluded.
    pub verdict: Verdict,
}

/// Everything the campaign learned about one mutant — one JSONL
/// checkpoint line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutantOutcome {
    /// Index into the deterministically generated mutant list.
    pub id: usize,
    /// The mutant's stable label (checked against the regenerated list on
    /// resume).
    pub label: String,
    /// Fault family: `model`, `program` or `chaos`.
    pub family: String,
    /// Stage-1 result.
    pub enumeration: EnumOutcome,
    /// Stage-2 results, one per strategy in campaign order.
    pub verdicts: Vec<StrategyVerdict>,
}

/// Kill-rate tally for one strategy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillRate {
    /// The stimulus strategy.
    pub strategy: Strategy,
    /// Mutants this strategy killed.
    pub killed: usize,
    /// Mutants that survived this strategy's whole budget.
    pub survived: usize,
    /// Cells excluded from scoring (explosion / timeout / panic).
    pub excluded: usize,
}

impl KillRate {
    /// `killed / (killed + survived)`; `0.0` when nothing scored.
    pub fn rate(&self) -> f64 {
        let scored = self.killed + self.survived;
        if scored == 0 {
            0.0
        } else {
            self.killed as f64 / scored as f64
        }
    }
}

/// The campaign's deliverable: per-mutant outcomes and the kill-rate
/// matrix. Contains no wall-clock readings, so a resumed campaign's
/// report is byte-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Name of the reference model.
    pub model: String,
    /// Reference reachable states.
    pub reference_states: u64,
    /// Reference state-graph arcs.
    pub reference_edges: u64,
    /// One outcome per mutant, sorted by id.
    pub mutants: Vec<MutantOutcome>,
    /// Whether every generated mutant has an outcome (false when
    /// `halt_after` stopped the run early).
    pub complete: bool,
    /// Per-strategy kill rates over the outcomes present.
    pub kill_rates: Vec<KillRate>,
}

impl CampaignReport {
    /// This strategy's tally, if present.
    pub fn kill_rate(&self, strategy: Strategy) -> Option<&KillRate> {
        self.kill_rates.iter().find(|k| k.strategy == strategy)
    }

    /// Canonical JSON form (pretty-printed, trailing newline) — the bytes
    /// the resume guarantee is stated over.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_default();
        s.push('\n');
        s
    }
}

/// Runs a full fault-injection campaign against `model`.
///
/// Builds the reference program, enumeration and stimulus suites, derives
/// the mutant list, resumes from the checkpoint when one exists, and
/// processes every remaining mutant under budgeted panic isolation.
///
/// # Errors
///
/// Fails only for *campaign-level* problems: the reference design not
/// enumerating, checkpoint I/O failing, or a checkpoint that does not
/// match this campaign's mutant list. Individual mutants never fail the
/// campaign — they degrade to typed [`Verdict`]s.
pub fn run_campaign(model: &Model, config: &CampaignConfig) -> Result<CampaignReport, Error> {
    let enumd = enumerate(model, &EnumConfig::default())?;
    run_campaign_with(model, &enumd, config)
}

/// [`run_campaign`] with a caller-supplied reference enumeration —
/// the entry point for callers that already hold the graph (a snapshot
/// load, a shared cache), skipping the reference re-enumeration that
/// dominates campaign startup at scale.
///
/// `enumd` must be the *complete* enumeration of `model` under the
/// default config; the suites and kill verdicts are only meaningful
/// against the true reference graph.
pub fn run_campaign_with(
    model: &Model,
    enumd: &EnumResult,
    config: &CampaignConfig,
) -> Result<CampaignReport, Error> {
    run_campaign_streaming(model, enumd, config, &|_| {})
}

/// [`run_campaign_with`] with an incremental observer: `observe` is
/// called once per *newly completed* mutant, after its outcome has been
/// appended to the checkpoint (when one is configured) — so anything an
/// observer has seen is already durable. Outcomes restored from an
/// existing checkpoint on resume are not replayed through the observer;
/// they appear in the final report only. With several worker threads the
/// observer may be invoked concurrently and out of id order — callers
/// needing order should sort by [`MutantOutcome::id`] as the final
/// report does.
pub fn run_campaign_streaming(
    model: &Model,
    enumd: &EnumResult,
    config: &CampaignConfig,
    observe: &(dyn Fn(&MutantOutcome) + Sync),
) -> Result<CampaignReport, Error> {
    let program = StepProgram::compile(model);
    let specs = generate_mutants(model, &program, config.mutant_limit, config.include_chaos);
    run_campaign_core(model, enumd, &program, &specs, config, observe)
}

/// [`run_campaign_with`] over a caller-supplied mutant pool instead of
/// the pool [`generate_mutants`] would derive — the entry point for
/// matrix campaigns whose member pools are diffed from a reference
/// member's pool ([`crate::mutant::diff_mutant_pool`]) rather than
/// regenerated by a full site scan. `config.mutant_limit` and
/// `config.include_chaos` are ignored: the pool *is* the campaign.
/// Checkpoint resume validates labels against the supplied pool, so a
/// checkpoint written under one pool is a typed error under another.
pub fn run_campaign_with_pool(
    model: &Model,
    enumd: &EnumResult,
    pool: &[MutantSpec],
    config: &CampaignConfig,
) -> Result<CampaignReport, Error> {
    let program = StepProgram::compile(model);
    run_campaign_core(model, enumd, &program, pool, config, &|_| {})
}

fn run_campaign_core(
    model: &Model,
    enumd: &EnumResult,
    program: &StepProgram,
    specs: &[MutantSpec],
    config: &CampaignConfig,
    observe: &(dyn Fn(&MutantOutcome) + Sync),
) -> Result<CampaignReport, Error> {
    let suites = build_suites(model, enumd, &config.suite)?;
    // splice only against a complete reference: a truncated graph has
    // rows the reference never finished, which no state may reuse
    let delta_ref = (config.delta && enumd.is_complete()).then_some(enumd);
    // the dense per-code successor table costs one extra reference sweep,
    // paid once here and amortized across the whole mutant pool; models
    // too large for it (or an erroring sweep) just skip partial-row
    // splicing rather than fail the campaign
    let dense = delta_ref.and_then(|r| RefDense::compute(model, r, program).ok().flatten());

    let mut done: Vec<Option<MutantOutcome>> = vec![None; specs.len()];
    if let Some(path) = &config.checkpoint {
        if path.exists() {
            let bytes = std::fs::read(path)?;
            let mut pos = 0usize;
            let mut lineno = 0usize;
            while pos < bytes.len() {
                let start = pos;
                let (end, terminated) = match bytes[pos..].iter().position(|&b| b == b'\n') {
                    Some(i) => (pos + i, true),
                    None => (bytes.len(), false),
                };
                pos = if terminated { end + 1 } else { bytes.len() };
                lineno += 1;
                let is_tail = pos >= bytes.len();
                let line = std::str::from_utf8(&bytes[start..end]).unwrap_or("\u{fffd}");
                if line.trim().is_empty() {
                    continue;
                }
                let parsed = serde_json::from_str::<MutantOutcome>(line);
                // A short final line is the signature of an append torn by
                // a crash: drop the fragment and re-run that one mutant.
                // (An *unterminated* tail is torn even if it parses — the
                // flush never completed, so trust nothing past the last
                // whole line.) Anything bad before the tail is not a tear.
                if is_tail && (!terminated || parsed.is_err()) {
                    OpenOptions::new().write(true).open(path)?.set_len(start as u64)?;
                    break;
                }
                let outcome =
                    parsed.map_err(|e| Error::Checkpoint(format!("line {lineno}: {e:?}")))?;
                let spec = specs.get(outcome.id).ok_or_else(|| {
                    Error::Checkpoint(format!(
                        "line {}: mutant id {} outside campaign of {}",
                        lineno,
                        outcome.id,
                        specs.len()
                    ))
                })?;
                if spec.label() != outcome.label {
                    return Err(Error::Checkpoint(format!(
                        "line {}: mutant {} is {:?} on disk but {:?} in this campaign — \
                         stale checkpoint for a different model or configuration",
                        lineno,
                        outcome.id,
                        outcome.label,
                        spec.label()
                    )));
                }
                let id = outcome.id;
                done[id] = Some(outcome);
            }
        }
    }

    let writer: Mutex<Option<File>> = Mutex::new(match &config.checkpoint {
        Some(path) => Some(OpenOptions::new().create(true).append(true).open(path)?),
        None => None,
    });
    let fresh: Mutex<Vec<MutantOutcome>> = Mutex::new(Vec::new());
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let next = AtomicUsize::new(0);
    let newly_completed = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..config.threads.max(1) {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // the per-mutant claim is the campaign's coarsest budget
                // checkpoint: a cancelled token stops new claims here,
                // leaving the checkpoint flushed through the last
                // completed mutant
                if config.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
                let id = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(id) else { break };
                if done[id].is_some() {
                    continue;
                }
                let outcome = run_mutant(
                    model,
                    program,
                    &suites,
                    spec,
                    id,
                    config,
                    delta_ref.map(|r| (r, dense.as_ref())),
                );
                let line = serde_json::to_string(&outcome).unwrap_or_default();
                {
                    let mut guard = writer.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(file) = guard.as_mut() {
                        if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
                            *io_error.lock().unwrap_or_else(|p| p.into_inner()) = Some(e);
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                observe(&outcome);
                fresh.lock().unwrap_or_else(|e| e.into_inner()).push(outcome);
                let n = newly_completed.fetch_add(1, Ordering::Relaxed) + 1;
                if config.halt_after.is_some_and(|h| n >= h) {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            });
        }
    });

    if let Some(e) = io_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e.into());
    }

    let mut mutants: Vec<MutantOutcome> = done
        .into_iter()
        .flatten()
        .chain(fresh.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect();
    mutants.sort_by_key(|o| o.id);
    let complete = mutants.len() == specs.len();
    let kill_rates = tally_kill_rates(&mutants);
    Ok(CampaignReport {
        model: model.name().to_string(),
        reference_states: enumd.graph.state_count() as u64,
        reference_edges: enumd.graph.edge_count() as u64,
        mutants,
        complete,
        kill_rates,
    })
}

fn tally_kill_rates(outcomes: &[MutantOutcome]) -> Vec<KillRate> {
    crate::stimulus::STRATEGIES
        .iter()
        .map(|&strategy| {
            let mut rate = KillRate { strategy, killed: 0, survived: 0, excluded: 0 };
            for cell in outcomes.iter().flat_map(|o| &o.verdicts) {
                if cell.strategy != strategy {
                    continue;
                }
                match cell.verdict {
                    Verdict::Killed { .. } => rate.killed += 1,
                    Verdict::Survived => rate.survived += 1,
                    _ => rate.excluded += 1,
                }
            }
            rate
        })
        .collect()
}

/// The built, runnable form of a mutant.
enum Artifact {
    Model(Model),
    Program(StepProgram),
    Chaos(crate::mutant::ChaosKind),
}

fn run_mutant(
    model: &Model,
    ref_program: &StepProgram,
    suites: &[StimulusSuite],
    spec: &MutantSpec,
    id: usize,
    config: &CampaignConfig,
    delta_ref: Option<(&EnumResult, Option<&RefDense>)>,
) -> MutantOutcome {
    let budget = &config.budget;
    let artifact: Result<Artifact, String> = match spec {
        MutantSpec::Model(m) => {
            apply_mutation(model, m).map(Artifact::Model).map_err(|e| e.to_string())
        }
        MutantSpec::Program(p) => {
            apply_program_mutation(ref_program, p).map(Artifact::Program).map_err(|e| e.to_string())
        }
        MutantSpec::Chaos(k) => Ok(Artifact::Chaos(*k)),
    };

    let (enumeration, blanket) = match &artifact {
        Ok(Artifact::Model(m)) => {
            let outcome = match delta_ref {
                Some((reference, dense)) => delta_enumerate_stage(
                    model,
                    reference,
                    ref_program.dep_sets(),
                    dense,
                    m,
                    budget,
                ),
                None => enumerate_stage(m, m, budget, config.batch_lanes),
            };
            let blanket = outcome.blanket_verdict();
            (outcome, blanket)
        }
        Ok(Artifact::Program(p)) => {
            let outcome = enumerate_stage(model, p, budget, config.batch_lanes);
            let blanket = outcome.blanket_verdict();
            (outcome, blanket)
        }
        Ok(Artifact::Chaos(k)) => {
            let factory = ChaosFactory::new(model, *k, config.wedge_sleep);
            let outcome = enumerate_stage(model, &factory, budget, config.batch_lanes);
            let blanket = outcome.blanket_verdict();
            (outcome, blanket)
        }
        // Unbuildable mutants cannot occur for specs derived from this
        // very model/program (the mutate test suites prove every site
        // builds); if one ever does, its cells are reported as Panicked —
        // excluded from scoring, like every degenerate cell.
        Err(e) => (EnumOutcome::Failed { error: e.clone() }, Some(Verdict::Panicked)),
    };

    let verdicts = suites
        .iter()
        .map(|suite| {
            let verdict = match (&blanket, &artifact) {
                (Some(v), _) => v.clone(),
                (None, Ok(a)) => {
                    replay_verdict(model, ref_program, a, config.wedge_sleep, suite, budget)
                }
                (None, Err(_)) => Verdict::Panicked,
            };
            StrategyVerdict { strategy: suite.strategy, verdict }
        })
        .collect();

    MutantOutcome {
        id,
        label: spec.label(),
        family: spec.family().to_string(),
        enumeration,
        verdicts,
    }
}

/// Stage 1: budgeted, isolated re-enumeration of one mutant.
fn enumerate_stage(
    enum_model: &Model,
    factory: &dyn EngineFactory,
    budget: &RunBudget,
    batch_lanes: usize,
) -> EnumOutcome {
    let config = EnumConfig {
        budget: budget.enum_budget(),
        // the soft budget must always fire before the hard state_limit
        state_limit: usize::MAX,
        batch_lanes,
        ..Default::default()
    };
    match run_isolated(|| enumerate_with(enum_model, &config, factory)) {
        Ok(Ok(result)) => match result.truncated {
            None => EnumOutcome::Completed {
                states: result.graph.state_count() as u64,
                edges: result.graph.edge_count() as u64,
            },
            Some(Truncation::States | Truncation::Transitions) => {
                EnumOutcome::Exploded { states: result.graph.state_count() as u64 }
            }
            Some(Truncation::Deadline) => EnumOutcome::Timeout,
        },
        Ok(Err(e)) => EnumOutcome::Failed { error: e.to_string() },
        Err(_panic) => EnumOutcome::Panicked,
    }
}

/// Stage 1 for model-level mutants when the campaign holds a complete
/// reference enumeration: budgeted, isolated *delta* re-enumeration.
///
/// [`enumerate_delta_opts`] produces a graph byte-identical to the full
/// sweep — budgets are checked at the same transition counts whether a
/// transition was evaluated or spliced — and falls back to a full sweep
/// internally whenever splicing would be unsound, so the outcome mapping
/// here is exactly [`enumerate_stage`]'s. The dense table, when the
/// campaign could afford one, upgrades states the whole-row check cannot
/// splice to per-choice-code mirroring and patching.
fn delta_enumerate_stage(
    reference: &Model,
    ref_enum: &EnumResult,
    deps: &DepSets,
    dense: Option<&RefDense>,
    mutant: &Model,
    budget: &RunBudget,
) -> EnumOutcome {
    let config = EnumConfig {
        budget: budget.enum_budget(),
        // the soft budget must always fire before the hard state_limit
        state_limit: usize::MAX,
        ..Default::default()
    };
    let opts = DeltaOptions { deps: Some(deps), dense };
    match run_isolated(|| enumerate_delta_opts(reference, ref_enum, mutant, &config, mutant, opts))
    {
        Ok(Ok(d)) => match d.result.truncated {
            None => EnumOutcome::Completed {
                states: d.result.graph.state_count() as u64,
                edges: d.result.graph.edge_count() as u64,
            },
            Some(Truncation::States | Truncation::Transitions) => {
                EnumOutcome::Exploded { states: d.result.graph.state_count() as u64 }
            }
            Some(Truncation::Deadline) => EnumOutcome::Timeout,
        },
        Ok(Err(e)) => EnumOutcome::Failed { error: e.to_string() },
        Err(_panic) => EnumOutcome::Panicked,
    }
}

/// Stage 2: lockstep replay of one suite against reference and mutant.
///
/// The deadline is rechecked every 128 cycles; a deadline cut carries no
/// payload, so marginal timing cannot perturb report bytes — only a
/// mutant pathologically slower than the budget envelope flips from
/// `Survived`/`Killed` to `Timeout`, and such a mutant times out in
/// stage 1 already.
fn replay_verdict(
    model: &Model,
    ref_program: &StepProgram,
    artifact: &Artifact,
    wedge_sleep: Duration,
    suite: &StimulusSuite,
    budget: &RunBudget,
) -> Verdict {
    let started = Instant::now();
    run_isolated(|| {
        let mut ref_sim = SyncSim::with_engine(model, ref_program.spawn());
        let chaos_factory;
        let mut mut_sim = match artifact {
            Artifact::Model(m) => SyncSim::new(m),
            Artifact::Program(p) => SyncSim::with_engine(model, p.spawn()),
            Artifact::Chaos(k) => {
                chaos_factory = ChaosFactory::new(model, *k, wedge_sleep);
                SyncSim::with_engine(model, chaos_factory.spawn())
            }
        };
        let mut cycles = 0u64;
        for seq in &suite.seqs {
            ref_sim.reset();
            mut_sim.reset();
            for &code in seq {
                if cycles >= budget.max_cycles {
                    return Verdict::Survived;
                }
                if cycles.is_multiple_of(128) && started.elapsed() >= budget.deadline {
                    return Verdict::Timeout;
                }
                let r = ref_sim.step_code(code);
                let m = mut_sim.step_code(code);
                cycles += 1;
                match (r, m) {
                    (Ok(()), Ok(())) => {
                        if ref_sim.state() != mut_sim.state() {
                            return Verdict::Killed { cycles };
                        }
                    }
                    (Ok(()), Err(_)) | (Err(_), Ok(())) => return Verdict::Killed { cycles },
                    // both sides fail identically: indistinguishable here,
                    // move on to the next sequence
                    (Err(_), Err(_)) => break,
                }
            }
        }
        Verdict::Survived
    })
    .unwrap_or(Verdict::Panicked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use archval_fsm::builder::ModelBuilder;

    fn counter(bits: u64) -> Model {
        let size = 1 << bits;
        let mut b = ModelBuilder::new("counter");
        let en = b.choice("enable", 2);
        let count = b.state_var("count", size, 0);
        let cur = b.var_expr(count);
        let bumped = b.add(cur, b.constant(1));
        let wrapped = b.modulo(bumped, b.constant(size));
        let next = b.ternary(b.choice_expr(en), wrapped, cur);
        b.set_next(count, next);
        b.build().unwrap()
    }

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            mutant_limit: 10,
            include_chaos: false,
            suite: SuiteConfig {
                fuzz_cycles: 512,
                random_seqs: 4,
                random_len: 64,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("archval_inject_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn campaign_assigns_every_mutant_a_full_verdict_row() {
        let m = counter(3);
        let report = run_campaign(&m, &quick_config()).unwrap();
        assert!(report.complete);
        assert_eq!(report.mutants.len(), 10);
        for (i, o) in report.mutants.iter().enumerate() {
            assert_eq!(o.id, i);
            assert_eq!(o.verdicts.len(), 3, "{}", o.label);
        }
        let tours = report.kill_rate(Strategy::Tours).unwrap();
        assert!(tours.killed > 0, "tours must kill some counter mutants");
    }

    #[test]
    fn campaign_is_deterministic() {
        let m = counter(3);
        let a = run_campaign(&m, &quick_config()).unwrap();
        let b = run_campaign(&m, &quick_config()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn halted_then_resumed_campaign_reports_byte_identically() {
        let m = counter(3);
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run_campaign(&m, &quick_config()).unwrap();

        let mut halted = quick_config();
        halted.checkpoint = Some(path.clone());
        halted.halt_after = Some(4);
        let partial = run_campaign(&m, &halted).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.mutants.len(), 4);

        let mut resumed_cfg = quick_config();
        resumed_cfg.checkpoint = Some(path.clone());
        let resumed = run_campaign(&m, &resumed_cfg).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert!(resumed.complete);
        assert_eq!(resumed, uninterrupted);
        assert_eq!(resumed.to_json().into_bytes(), uninterrupted.to_json().into_bytes());
    }

    #[test]
    fn stale_checkpoint_is_a_typed_error() {
        let m = counter(3);
        let path = temp_path("stale");
        std::fs::write(
            &path,
            "{\"id\":0,\"label\":\"model:not_a_real_site\",\"family\":\"model\",\
             \"enumeration\":\"Timeout\",\"verdicts\":[]}\n",
        )
        .unwrap();
        let mut cfg = quick_config();
        cfg.checkpoint = Some(path.clone());
        let err = run_campaign(&m, &cfg).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, Error::Checkpoint(_)), "{err}");
    }

    #[test]
    fn corrupt_mid_checkpoint_line_is_a_typed_error() {
        let m = counter(3);
        let path = temp_path("corrupt");
        // corruption *before* the tail cannot be a torn append
        std::fs::write(&path, "{not json\n{also not json\n").unwrap();
        let mut cfg = quick_config();
        cfg.checkpoint = Some(path.clone());
        let err = run_campaign(&m, &cfg).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(err, Error::Checkpoint(_)), "{err}");
    }

    #[test]
    fn torn_checkpoint_tail_is_truncated_and_rerun() {
        let m = counter(3);
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run_campaign(&m, &quick_config()).unwrap();

        let mut halted = quick_config();
        halted.checkpoint = Some(path.clone());
        halted.halt_after = Some(4);
        let partial = run_campaign(&m, &halted).unwrap();
        assert_eq!(partial.mutants.len(), 4);

        // tear the tail the way a crashed append would: keep only half of
        // the final line and lose its newline
        let bytes = std::fs::read(&path).unwrap();
        let body = std::str::from_utf8(&bytes).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        let torn = format!(
            "{}\n{}",
            lines[..lines.len() - 1].join("\n"),
            &lines[lines.len() - 1][..lines[lines.len() - 1].len() / 2]
        );
        std::fs::write(&path, torn).unwrap();

        let mut resumed_cfg = quick_config();
        resumed_cfg.checkpoint = Some(path.clone());
        let resumed = run_campaign(&m, &resumed_cfg).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert!(resumed.complete);
        assert_eq!(resumed.to_json().into_bytes(), uninterrupted.to_json().into_bytes());
    }

    #[test]
    fn cancelled_campaign_stops_early_and_resumes() {
        let m = counter(3);
        let path = temp_path("cancel");
        let _ = std::fs::remove_file(&path);

        let uninterrupted = run_campaign(&m, &quick_config()).unwrap();

        // a pre-cancelled token: no new mutants are claimed at all
        let mut cfg = quick_config();
        cfg.checkpoint = Some(path.clone());
        let token = CancelToken::new();
        token.cancel();
        cfg.cancel = Some(token);
        let halted = run_campaign(&m, &cfg).unwrap();
        assert!(!halted.complete);
        assert!(halted.mutants.is_empty());

        // resuming without the token completes byte-identically
        cfg.cancel = None;
        let resumed = run_campaign(&m, &cfg).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.to_json().into_bytes(), uninterrupted.to_json().into_bytes());
    }

    #[test]
    fn caller_supplied_enumeration_matches_and_streams_every_mutant_once() {
        let m = counter(3);
        let enumd = enumerate(&m, &EnumConfig::default()).unwrap();
        let seen = Mutex::new(Vec::new());
        let streamed = run_campaign_streaming(&m, &enumd, &quick_config(), &|o| {
            seen.lock().unwrap().push(o.id);
        })
        .unwrap();
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..streamed.mutants.len()).collect::<Vec<_>>());
        assert_eq!(streamed, run_campaign(&m, &quick_config()).unwrap());
        assert_eq!(streamed, run_campaign_with(&m, &enumd, &quick_config()).unwrap());
    }

    #[test]
    fn delta_campaign_reports_byte_identically_to_full() {
        let m = counter(3);
        let mut full = quick_config();
        full.delta = false;
        let full_report = run_campaign(&m, &full).unwrap();
        let delta_report = run_campaign(&m, &quick_config()).unwrap();
        assert_eq!(full_report, delta_report);
        assert_eq!(full_report.to_json().into_bytes(), delta_report.to_json().into_bytes());
    }

    #[test]
    fn explicit_pool_matches_generated_pool() {
        let m = counter(3);
        let enumd = enumerate(&m, &EnumConfig::default()).unwrap();
        let cfg = quick_config();
        let program = StepProgram::compile(&m);
        let pool = generate_mutants(&m, &program, cfg.mutant_limit, cfg.include_chaos);
        let pooled = run_campaign_with_pool(&m, &enumd, &pool, &cfg).unwrap();
        assert_eq!(pooled, run_campaign_with(&m, &enumd, &cfg).unwrap());
    }

    #[test]
    fn pool_checkpoint_validates_against_the_supplied_pool() {
        let m = counter(3);
        let enumd = enumerate(&m, &EnumConfig::default()).unwrap();
        let program = StepProgram::compile(&m);
        let pool = generate_mutants(&m, &program, 6, false);
        let path = temp_path("pool_resume");
        let _ = std::fs::remove_file(&path);

        let mut cfg = quick_config();
        cfg.checkpoint = Some(path.clone());
        cfg.halt_after = Some(2);
        let partial = run_campaign_with_pool(&m, &enumd, &pool, &cfg).unwrap();
        assert!(!partial.complete);

        // resuming under a *different* pool must be a typed error
        cfg.halt_after = None;
        let reordered: Vec<MutantSpec> = pool.iter().rev().cloned().collect();
        let err = run_campaign_with_pool(&m, &enumd, &reordered, &cfg).unwrap_err();
        assert!(matches!(err, Error::Checkpoint(_)), "{err}");

        // resuming under the same pool completes byte-identically
        let resumed = run_campaign_with_pool(&m, &enumd, &pool, &cfg).unwrap();
        std::fs::remove_file(&path).unwrap();
        cfg.checkpoint = None;
        let uninterrupted = run_campaign_with_pool(&m, &enumd, &pool, &cfg).unwrap();
        assert_eq!(resumed, uninterrupted);
        assert_eq!(resumed.to_json().into_bytes(), uninterrupted.to_json().into_bytes());
    }

    #[test]
    fn parallel_campaign_matches_sequential() {
        let m = counter(3);
        let sequential = run_campaign(&m, &quick_config()).unwrap();
        let mut par = quick_config();
        par.threads = 4;
        let parallel = run_campaign(&m, &par).unwrap();
        assert_eq!(sequential, parallel);
    }
}
