//! Batched structure-of-arrays execution of the choice-dependent suffix.
//!
//! The enumerator sweeps every choice permutation against one dequeued
//! state — ~1,920 permutations per state at paper scale — and the scalar
//! interpreter re-fetches and re-decodes every suffix instruction once
//! per permutation. A [`BatchProgram`] flips that loop nest: the suffix
//! is lowered once into a *predicated* form with no control flow, and
//! each instruction is then executed once per batch with its operation
//! applied across all lanes (`lane l` = choice permutation `l`), so the
//! dispatch cost is amortised over the whole batch and the inner loops
//! are tight, branch-free passes over contiguous lane arrays.
//!
//! # Lowering
//!
//! The compiler emits strictly structured suffix control flow (see
//! `lower.rs`): every `JumpIfZero c -> ELSE` guards a then-region whose
//! last instruction is `Jump END` at `ELSE - 1`, with the else-region
//! ending at `END`. That shape is parsed here by recursive descent and
//! replaced with **per-lane predicate masks**: entering a guarded region
//! derives child predicates `p_then = p & (c != 0)` and
//! `p_else = p & (c == 0)` from the parent predicate `p`, and every
//! instruction inside the region writes its destination only in lanes
//! where its predicate is set. Full predication is exactly equivalent to
//! per-lane scalar control flow because the emitter's availability
//! scoping guarantees no permutation reads a register its own path did
//! not write — values computed in lanes that a region's predicate masks
//! off are never observed by those lanes.
//!
//! `ModChecked` — the only fallible opcode — detects its error
//! per-lane: a predicate-active lane with a zero divisor is recorded
//! (earliest lane wins, matching the scalar engine's code-order
//! semantics) while execution continues harmlessly, so output lanes
//! before the failing one still hold exact successors. Inactive lanes
//! may carry garbage divisors, so the actual division substitutes 1 for
//! zero divisors — the quotient in such lanes is never observed.
//!
//! # Register layout
//!
//! Lane storage is allocated only for registers the suffix touches,
//! remapped to compact slots. Slots whose first access is a *read* are
//! suffix live-ins (constants and prefix results); their scalar values
//! are broadcast into the lane arrays once per dequeued state by
//! [`CompiledEngine`](crate::engine::CompiledEngine) — not recomputed or
//! recopied per lane batch. Predicates occupy slots in the same arena.
//!
//! A program whose suffix does not parse as structured regions (a
//! corrupted instruction stream — the mutation operators in
//! [`mutate`](crate::mutate) never touch control flow, so this does not
//! happen for campaign mutants) yields no `BatchProgram`; the engine
//! falls back to the scalar per-lane loop instead of panicking.

use archval_fsm::engine::BatchError;
use archval_fsm::Error;

use crate::program::{Instr, Op, StepProgram};

/// Sentinel slot index: "no predicate" (all lanes active).
const NO_PRED: u32 = u32::MAX;

/// One predicated lane instruction.
#[derive(Debug, Clone, Copy)]
enum BInstr {
    /// A value/store op applied across all lanes; writes are masked by
    /// `pred` unless it is [`NO_PRED`]. Operand meaning follows [`Op`],
    /// with register operands remapped to lane slots (`LoadChoice.a` and
    /// `Store*.dst` stay raw input/output indices).
    Val { op: Op, dst: u32, a: u32, b: u32, c: u32, pred: u32 },
    /// `pred[dst] = parent & ((reg[cond] != 0) ^ invert)` per lane, with
    /// an absent parent treated as all-active.
    MkPred { dst: u32, parent: u32, cond: u32, invert: bool },
}

/// The suffix of a [`StepProgram`] lowered to predicated SoA form.
#[derive(Debug)]
pub(crate) struct BatchProgram {
    instrs: Vec<BInstr>,
    /// `(scalar register, lane slot)` pairs to broadcast per state:
    /// every register the suffix reads before writing.
    broadcast: Vec<(u32, u32)>,
    /// Total lane arrays (value and predicate slots).
    n_slots: usize,
    /// Exclusive upper bound of the raw choice rows `LoadChoice` reads.
    n_choice_rows: usize,
    /// Exclusive upper bound of the raw output rows `Store*` writes.
    n_out_rows: usize,
}

/// Recursive-descent lowering state.
struct Lowerer<'p> {
    p: &'p StepProgram,
    /// Scalar register -> lane slot (`u32::MAX` = not yet touched).
    reg_slot: Vec<u32>,
    broadcast: Vec<(u32, u32)>,
    instrs: Vec<BInstr>,
    n_slots: u32,
}

impl Lowerer<'_> {
    fn alloc(&mut self) -> u32 {
        let s = self.n_slots;
        self.n_slots += 1;
        s
    }

    /// Slot for a register the current instruction *reads*: first touch
    /// means the value flows in from the scalar file (broadcast).
    fn slot_read(&mut self, r: u32) -> u32 {
        let s = self.reg_slot[r as usize];
        if s != u32::MAX {
            return s;
        }
        let s = self.alloc();
        self.reg_slot[r as usize] = s;
        self.broadcast.push((r, s));
        s
    }

    /// Slot for a register the current instruction *writes*: first touch
    /// needs no broadcast.
    fn slot_write(&mut self, r: u32) -> u32 {
        let s = self.reg_slot[r as usize];
        if s != u32::MAX {
            return s;
        }
        let s = self.alloc();
        self.reg_slot[r as usize] = s;
        s
    }

    /// Lowers instructions `[pc, end)` under predicate `pred`. `None`
    /// means the stream is not the structured shape the emitter
    /// produces.
    fn region(&mut self, mut pc: usize, end: usize, pred: u32) -> Option<()> {
        while pc < end {
            let i = self.p.instrs[pc];
            match i.op {
                // a bare Jump only appears as a region terminator, which
                // the JumpIfZero arm below consumes
                Op::Jump => return None,
                Op::JumpIfZero => {
                    let else_start = i.b as usize;
                    if else_start <= pc + 1 || else_start > end {
                        return None;
                    }
                    let jump = self.p.instrs[else_start - 1];
                    if jump.op != Op::Jump {
                        return None;
                    }
                    let region_end = jump.a as usize;
                    if region_end < else_start || region_end > end {
                        return None;
                    }
                    let cond = self.slot_read(i.a);
                    let p_then = self.alloc();
                    let p_else = self.alloc();
                    self.instrs.push(BInstr::MkPred {
                        dst: p_then,
                        parent: pred,
                        cond,
                        invert: false,
                    });
                    self.instrs.push(BInstr::MkPred {
                        dst: p_else,
                        parent: pred,
                        cond,
                        invert: true,
                    });
                    self.region(pc + 1, else_start - 1, p_then)?;
                    self.region(else_start, region_end, p_else)?;
                    pc = region_end;
                }
                _ => {
                    self.value(i, pred)?;
                    pc += 1;
                }
            }
        }
        Some(())
    }

    /// Lowers one straight-line instruction under `pred`.
    fn value(&mut self, i: Instr, pred: u32) -> Option<()> {
        let (dst, a, b, c) = match i.op {
            // the suffix runs with no state slice; a LoadVar here would
            // make the scalar interpreter panic, so refuse to vectorise
            Op::LoadVar | Op::Jump | Op::JumpIfZero => return None,
            Op::LoadChoice => (self.slot_write(i.dst), i.a, 0, 0),
            Op::Move | Op::Not | Op::BitNot => {
                let a = self.slot_read(i.a);
                (self.slot_write(i.dst), a, 0, 0)
            }
            Op::CondMove => {
                let (a, b, c) = (self.slot_read(i.a), self.slot_read(i.b), self.slot_read(i.c));
                (self.slot_write(i.dst), a, b, c)
            }
            Op::StoreMask | Op::StoreMod => (i.dst, self.slot_read(i.a), 0, 0),
            // every remaining op is a binary read-a-read-b-write-dst
            _ => {
                let (a, b) = (self.slot_read(i.a), self.slot_read(i.b));
                (self.slot_write(i.dst), a, b, 0)
            }
        };
        self.instrs.push(BInstr::Val { op: i.op, dst, a, b, c, pred });
        Some(())
    }
}

impl BatchProgram {
    /// Lowers `program`'s suffix, or `None` when its control flow is not
    /// the structured shape full predication requires.
    pub(crate) fn build(program: &StepProgram) -> Option<BatchProgram> {
        let mut lw = Lowerer {
            p: program,
            reg_slot: vec![u32::MAX; program.register_count()],
            broadcast: Vec::new(),
            instrs: Vec::new(),
            n_slots: 0,
        };
        lw.region(program.prefix_len, program.instrs.len(), NO_PRED)?;
        // record the raw row bounds so `exec` can validate every access
        // once up front instead of bounds-checking per element
        let mut n_choice_rows = 0usize;
        let mut n_out_rows = 0usize;
        for instr in &lw.instrs {
            if let BInstr::Val { op, dst, a, .. } = *instr {
                match op {
                    Op::LoadChoice => n_choice_rows = n_choice_rows.max(a as usize + 1),
                    Op::StoreMask | Op::StoreMod => n_out_rows = n_out_rows.max(dst as usize + 1),
                    _ => {}
                }
            }
        }
        Some(BatchProgram {
            instrs: lw.instrs,
            broadcast: lw.broadcast,
            // at least one slot so unused operand index 0 stays in bounds
            n_slots: (lw.n_slots as usize).max(1),
            n_choice_rows,
            n_out_rows,
        })
    }

    /// Lane-array words needed for `lanes` lanes.
    pub(crate) fn buf_len(&self, lanes: usize) -> usize {
        self.n_slots * lanes
    }

    /// Copies the suffix's scalar live-ins (constants and prefix
    /// results) from `regs` into every lane of `buf` — the once-per-state
    /// transpose.
    pub(crate) fn broadcast(&self, regs: &[u64], lanes: usize, buf: &mut [u64]) {
        for &(reg, slot) in &self.broadcast {
            let base = slot as usize * lanes;
            buf[base..base + lanes].fill(regs[reg as usize]);
        }
    }

    /// Executes the predicated suffix over `lanes` lanes.
    ///
    /// `choices` and `out` are SoA (`input index * lanes + lane`); `buf`
    /// must hold [`buf_len`](BatchProgram::buf_len) words with the
    /// broadcast slots already filled for the current state.
    ///
    /// # Errors
    ///
    /// [`BatchError`] naming the earliest lane whose scalar evaluation
    /// would fail with `DivisionByZero`; lanes before it are exact.
    pub(crate) fn exec(
        &self,
        p: &StepProgram,
        lanes: usize,
        buf: &mut [u64],
        choices: &[u64],
        out: &mut [u64],
    ) -> Result<(), BatchError> {
        // One validation pass covers every row access in the hot loop:
        // value/predicate rows start at `slot * lanes` with `slot <
        // n_slots`, choice reads at `a * lanes` with `a < n_choice_rows`,
        // stores at `dst * lanes` with `dst < n_out_rows` — all bounds
        // recorded at build time — so `base + l` with `l < lanes` stays
        // inside the respective slice and the lane loops can use
        // debug-asserted unchecked access.
        assert!(buf.len() >= self.n_slots * lanes, "lane buffer shorter than n_slots * lanes");
        assert!(
            choices.len() >= self.n_choice_rows * lanes,
            "choice rows shorter than the program reads"
        );
        assert!(
            out.len() >= self.n_out_rows * lanes,
            "output rows shorter than the program writes"
        );

        #[inline(always)]
        fn ld(xs: &[u64], i: usize) -> u64 {
            debug_assert!(i < xs.len());
            // SAFETY: i = row_base + l with the row base and lane count
            // validated against xs.len() at exec entry
            unsafe { *xs.get_unchecked(i) }
        }
        #[inline(always)]
        fn st(xs: &mut [u64], i: usize, v: u64) {
            debug_assert!(i < xs.len());
            // SAFETY: as in `ld`
            unsafe { *xs.get_unchecked_mut(i) = v }
        }

        let mut first_fail = usize::MAX;
        for instr in &self.instrs {
            match *instr {
                BInstr::MkPred { dst, parent, cond, invert } => {
                    let (db, cb) = (dst as usize * lanes, cond as usize * lanes);
                    if parent == NO_PRED {
                        for l in 0..lanes {
                            st(buf, db + l, u64::from((ld(buf, cb + l) != 0) ^ invert));
                        }
                    } else {
                        let pb = parent as usize * lanes;
                        for l in 0..lanes {
                            let pv = ld(buf, pb + l) & u64::from((ld(buf, cb + l) != 0) ^ invert);
                            st(buf, db + l, pv);
                        }
                    }
                }
                BInstr::Val { op, dst, a, b, c, pred } => {
                    let (db, ab, bb, cb) = (
                        dst as usize * lanes,
                        a as usize * lanes,
                        b as usize * lanes,
                        c as usize * lanes,
                    );
                    let pb = if pred == NO_PRED { usize::MAX } else { pred as usize * lanes };
                    // masked select keeping the old value in masked-off
                    // lanes — predicates are 0/1 so the mask is all-ones
                    // or all-zeros
                    macro_rules! lanes_store {
                        (|$l:ident| $val:expr) => {
                            if pb == usize::MAX {
                                for $l in 0..lanes {
                                    let v = $val;
                                    st(buf, db + $l, v);
                                }
                            } else {
                                for $l in 0..lanes {
                                    let m = (ld(buf, pb + $l) & 1).wrapping_neg();
                                    let v = $val;
                                    let merged = (v & m) | (ld(buf, db + $l) & !m);
                                    st(buf, db + $l, merged);
                                }
                            }
                        };
                    }
                    match op {
                        Op::LoadChoice => {
                            let src = a as usize * lanes;
                            lanes_store!(|l| ld(choices, src + l));
                        }
                        Op::Move => lanes_store!(|l| ld(buf, ab + l)),
                        Op::Not => lanes_store!(|l| u64::from(ld(buf, ab + l) == 0)),
                        Op::BitNot => lanes_store!(|l| !ld(buf, ab + l)),
                        Op::And => {
                            lanes_store!(|l| u64::from(
                                ld(buf, ab + l) != 0 && ld(buf, bb + l) != 0
                            ));
                        }
                        Op::Or => {
                            lanes_store!(|l| u64::from(
                                ld(buf, ab + l) != 0 || ld(buf, bb + l) != 0
                            ));
                        }
                        Op::BitAnd => lanes_store!(|l| ld(buf, ab + l) & ld(buf, bb + l)),
                        Op::BitOr => lanes_store!(|l| ld(buf, ab + l) | ld(buf, bb + l)),
                        Op::BitXor => lanes_store!(|l| ld(buf, ab + l) ^ ld(buf, bb + l)),
                        Op::Add => lanes_store!(|l| ld(buf, ab + l).wrapping_add(ld(buf, bb + l))),
                        Op::Sub => lanes_store!(|l| ld(buf, ab + l).wrapping_sub(ld(buf, bb + l))),
                        Op::Mul => lanes_store!(|l| ld(buf, ab + l).wrapping_mul(ld(buf, bb + l))),
                        // a masked-off lane may hold a garbage zero
                        // divisor; substitute 1 so the (unobserved)
                        // quotient computes instead of trapping
                        Op::ModUnchecked => {
                            lanes_store!(|l| {
                                let d = ld(buf, bb + l);
                                ld(buf, ab + l) % (d | u64::from(d == 0))
                            });
                        }
                        Op::ModChecked => {
                            for l in 0..lanes {
                                let active = pb == usize::MAX || ld(buf, pb + l) != 0;
                                if active && ld(buf, bb + l) == 0 && l < first_fail {
                                    first_fail = l;
                                }
                            }
                            lanes_store!(|l| {
                                let d = ld(buf, bb + l);
                                ld(buf, ab + l) % (d | u64::from(d == 0))
                            });
                        }
                        Op::Eq => lanes_store!(|l| u64::from(ld(buf, ab + l) == ld(buf, bb + l))),
                        Op::Ne => lanes_store!(|l| u64::from(ld(buf, ab + l) != ld(buf, bb + l))),
                        Op::Lt => lanes_store!(|l| u64::from(ld(buf, ab + l) < ld(buf, bb + l))),
                        Op::Le => lanes_store!(|l| u64::from(ld(buf, ab + l) <= ld(buf, bb + l))),
                        Op::Gt => lanes_store!(|l| u64::from(ld(buf, ab + l) > ld(buf, bb + l))),
                        Op::Ge => lanes_store!(|l| u64::from(ld(buf, ab + l) >= ld(buf, bb + l))),
                        Op::Shl => lanes_store!(|l| ld(buf, ab + l) << ld(buf, bb + l).min(63)),
                        Op::Shr => lanes_store!(|l| ld(buf, ab + l) >> ld(buf, bb + l).min(63)),
                        Op::CondMove => {
                            lanes_store!(|l| if ld(buf, ab + l) != 0 {
                                ld(buf, bb + l)
                            } else {
                                ld(buf, cb + l)
                            });
                        }
                        Op::StoreMask => {
                            let (ob, mask) = (db, p.var_masks[dst as usize]);
                            if pb == usize::MAX {
                                for l in 0..lanes {
                                    st(out, ob + l, ld(buf, ab + l) & mask);
                                }
                            } else {
                                for l in 0..lanes {
                                    let m = (ld(buf, pb + l) & 1).wrapping_neg();
                                    let merged =
                                        ((ld(buf, ab + l) & mask) & m) | (ld(out, ob + l) & !m);
                                    st(out, ob + l, merged);
                                }
                            }
                        }
                        Op::StoreMod => {
                            let (ob, size) = (db, p.var_sizes[dst as usize]);
                            if pb == usize::MAX {
                                for l in 0..lanes {
                                    st(out, ob + l, ld(buf, ab + l) % size);
                                }
                            } else {
                                for l in 0..lanes {
                                    let m = (ld(buf, pb + l) & 1).wrapping_neg();
                                    let merged =
                                        ((ld(buf, ab + l) % size) & m) | (ld(out, ob + l) & !m);
                                    st(out, ob + l, merged);
                                }
                            }
                        }
                        Op::LoadVar | Op::Jump | Op::JumpIfZero => {
                            unreachable!("rejected during batch lowering")
                        }
                    }
                }
            }
        }
        if first_fail != usize::MAX {
            return Err(BatchError { lane: first_fail, error: Error::DivisionByZero });
        }
        Ok(())
    }
}
