//! Expression language for combinational logic and next-state functions.
//!
//! Expressions are stored in a flat arena owned by the [`Model`]; nodes
//! reference each other through [`ExprId`] indices. All values are `u64`s
//! truncated to the finite domain of the consuming variable on assignment.
//!
//! [`Model`]: crate::model::Model
//! [`ExprId`]: crate::model::ExprId

use crate::model::{ChoiceId, DefId, ExprId, VarId};

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical negation: nonzero becomes 0, zero becomes 1.
    Not,
    /// Bitwise complement (interpreted within the consumer's domain).
    BitNot,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Logical and: 1 if both operands are nonzero.
    And,
    /// Logical or: 1 if either operand is nonzero.
    Or,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise exclusive-or.
    BitXor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Euclidean modulo. Evaluation fails on a zero divisor.
    Mod,
    /// Equality test, producing 0 or 1.
    Eq,
    /// Inequality test, producing 0 or 1.
    Ne,
    /// Unsigned less-than, producing 0 or 1.
    Lt,
    /// Unsigned less-or-equal, producing 0 or 1.
    Le,
    /// Unsigned greater-than, producing 0 or 1.
    Gt,
    /// Unsigned greater-or-equal, producing 0 or 1.
    Ge,
    /// Left shift (saturating the shift amount at 63).
    Shl,
    /// Logical right shift (saturating the shift amount at 63).
    Shr,
}

/// An expression node.
///
/// Nodes never own their children; children are [`ExprId`]s into the model's
/// expression arena, which keeps the evaluator allocation-free and makes
/// common-subexpression sharing trivial.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant value.
    Const(u64),
    /// The *current* value of a state variable.
    Var(VarId),
    /// The value of a nondeterministic choice input this cycle.
    Choice(ChoiceId),
    /// The value of a combinational definition.
    Def(DefId),
    /// A unary operation.
    Unary(UnaryOp, ExprId),
    /// A binary operation.
    Binary(BinaryOp, ExprId, ExprId),
    /// `if cond != 0 { then } else { other }`.
    Ternary {
        /// Condition operand.
        cond: ExprId,
        /// Value when the condition is nonzero.
        then: ExprId,
        /// Value when the condition is zero.
        other: ExprId,
    },
    /// A chain of guarded alternatives with a default, evaluated in order;
    /// the value of the first arm whose guard is nonzero, else the default.
    ///
    /// This models Verilog `case` statements and priority if/else chains
    /// without deep `Ternary` nesting.
    Select {
        /// `(guard, value)` pairs tried in order.
        arms: Vec<(ExprId, ExprId)>,
        /// Value when no guard matches.
        default: ExprId,
    },
}

impl Expr {
    /// Visits every child [`ExprId`] of this node.
    pub fn for_each_child(&self, mut f: impl FnMut(ExprId)) {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Choice(_) | Expr::Def(_) => {}
            Expr::Unary(_, a) => f(*a),
            Expr::Binary(_, a, b) => {
                f(*a);
                f(*b);
            }
            Expr::Ternary { cond, then, other } => {
                f(*cond);
                f(*then);
                f(*other);
            }
            Expr::Select { arms, default } => {
                for (g, v) in arms {
                    f(*g);
                    f(*v);
                }
                f(*default);
            }
        }
    }
}

/// Applies a unary operator to a value.
#[inline]
pub fn apply_unary(op: UnaryOp, a: u64) -> u64 {
    match op {
        UnaryOp::Not => u64::from(a == 0),
        UnaryOp::BitNot => !a,
    }
}

/// Applies a binary operator to two values.
///
/// Returns `None` only for `Mod` with a zero divisor.
#[inline]
pub fn apply_binary(op: BinaryOp, a: u64, b: u64) -> Option<u64> {
    Some(match op {
        BinaryOp::And => u64::from(a != 0 && b != 0),
        BinaryOp::Or => u64::from(a != 0 || b != 0),
        BinaryOp::BitAnd => a & b,
        BinaryOp::BitOr => a | b,
        BinaryOp::BitXor => a ^ b,
        BinaryOp::Add => a.wrapping_add(b),
        BinaryOp::Sub => a.wrapping_sub(b),
        BinaryOp::Mul => a.wrapping_mul(b),
        BinaryOp::Mod => {
            if b == 0 {
                return None;
            }
            a % b
        }
        BinaryOp::Eq => u64::from(a == b),
        BinaryOp::Ne => u64::from(a != b),
        BinaryOp::Lt => u64::from(a < b),
        BinaryOp::Le => u64::from(a <= b),
        BinaryOp::Gt => u64::from(a > b),
        BinaryOp::Ge => u64::from(a >= b),
        BinaryOp::Shl => a << b.min(63),
        BinaryOp::Shr => a >> b.min(63),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_truth_table() {
        assert_eq!(apply_unary(UnaryOp::Not, 0), 1);
        assert_eq!(apply_unary(UnaryOp::Not, 1), 0);
        assert_eq!(apply_unary(UnaryOp::Not, 17), 0);
        assert_eq!(apply_unary(UnaryOp::BitNot, 0), u64::MAX);
    }

    #[test]
    fn binary_logic_treats_any_nonzero_as_true() {
        assert_eq!(apply_binary(BinaryOp::And, 3, 5), Some(1));
        assert_eq!(apply_binary(BinaryOp::And, 3, 0), Some(0));
        assert_eq!(apply_binary(BinaryOp::Or, 0, 0), Some(0));
        assert_eq!(apply_binary(BinaryOp::Or, 0, 9), Some(1));
    }

    #[test]
    fn binary_arithmetic_wraps() {
        assert_eq!(apply_binary(BinaryOp::Add, u64::MAX, 1), Some(0));
        assert_eq!(apply_binary(BinaryOp::Sub, 0, 1), Some(u64::MAX));
    }

    #[test]
    fn modulo_by_zero_is_detected() {
        assert_eq!(apply_binary(BinaryOp::Mod, 5, 0), None);
        assert_eq!(apply_binary(BinaryOp::Mod, 5, 3), Some(2));
    }

    #[test]
    fn comparisons_produce_bits() {
        assert_eq!(apply_binary(BinaryOp::Lt, 2, 3), Some(1));
        assert_eq!(apply_binary(BinaryOp::Ge, 2, 3), Some(0));
        assert_eq!(apply_binary(BinaryOp::Eq, 7, 7), Some(1));
        assert_eq!(apply_binary(BinaryOp::Ne, 7, 7), Some(0));
    }

    #[test]
    fn shifts_saturate_amount() {
        assert_eq!(apply_binary(BinaryOp::Shl, 1, 200), Some(1 << 63));
        assert_eq!(apply_binary(BinaryOp::Shr, u64::MAX, 200), Some(1));
    }

    #[test]
    fn for_each_child_visits_all() {
        let e = Expr::Select {
            arms: vec![(ExprId(0), ExprId(1)), (ExprId(2), ExprId(3))],
            default: ExprId(4),
        };
        let mut seen = Vec::new();
        e.for_each_child(|c| seen.push(c.0));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
