//! Regenerates Figure 3.2: the FSM decomposition of the PP control model
//! with its abstract interfaces, dumped from the translated Verilog.

use archval_bench::scale_from_args;
use archval_pp::pp_control_model;

fn main() {
    archval_bench::run("repro-fig3-2", || {
        let scale = scale_from_args();
        let model = pp_control_model(&scale)?;
        run_body(&scale, &model);
        Ok(())
    });
}

fn run_body(scale: &archval_pp::PpScale, model: &archval_fsm::Model) {
    println!("== Figure 3.2 — FSM representation of the PP ({scale:?}) ==\n");
    println!("abstract interface models (nondeterministic inputs):");
    for c in model.choices() {
        println!("  {:<14} {} distinguished cases", c.name, c.size);
    }
    println!("\ncontrol state registers:");
    for v in model.vars() {
        println!("  {:<14} domain {:<4} reset {}", v.name, v.size, v.init);
    }
    println!("\ncombinational control signals: {}", model.defs().len());
    println!("bits per state: {}", model.bits_per_state());
    println!(
        "choice combinations permuted per state during enumeration: {}",
        model.choice_combinations()
    );
}
