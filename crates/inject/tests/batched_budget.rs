//! Satellite to the batched SoA engine: a campaign whose per-mutant
//! enumeration budget exhausts *inside* a lane batch must produce the
//! same typed verdicts and byte-identical checkpoint lines as the scalar
//! campaign — across a boundary-value sweep of `max_transitions` around
//! the enumerator's 4096-transition mid-sweep check interval.

use std::time::Duration;

use archval_fsm::builder::ModelBuilder;
use archval_fsm::Model;
use archval_inject::{run_campaign, CampaignConfig, RunBudget, SuiteConfig};

/// Three 16-valued choices → 4096 permutations per state, so one state's
/// sweep spans the enumerator's whole 4096-transition budget-check
/// window and a 1920-lane batch must be capped mid-state to land the
/// check on the scalar boundary.
fn wide_sweep_model() -> Model {
    let mut b = ModelBuilder::new("wide_sweep");
    let c0 = b.choice("c0", 16);
    let c1 = b.choice("c1", 16);
    let c2 = b.choice("c2", 16);
    let v0 = b.state_var("v0", 16, 0);
    let v1 = b.state_var("v1", 16, 0);
    b.set_next(v0, b.choice_expr(c0));
    let sum = b.add(b.choice_expr(c1), b.choice_expr(c2));
    b.set_next(v1, sum);
    b.build().unwrap()
}

fn budgeted_config(max_transitions: u64, batch_lanes: usize) -> CampaignConfig {
    CampaignConfig {
        mutant_limit: 8,
        // chaos excluded: this test pins deterministic budget truncation,
        // not the wall-clock machinery (covered by panic_isolation.rs)
        include_chaos: false,
        budget: RunBudget {
            max_states: 1 << 20,
            max_transitions,
            deadline: Duration::from_secs(30),
            max_cycles: 2_048,
        },
        suite: SuiteConfig {
            fuzz_cycles: 256,
            random_seqs: 2,
            random_len: 32,
            ..Default::default()
        },
        batch_lanes,
        ..Default::default()
    }
}

/// Boundary values around one state's 4096-permutation sweep and the
/// enumerator's mid-sweep check interval: budgets that exhaust on the
/// first transition, mid-batch, exactly on the 4096 boundary, one off
/// either side, and beyond the first state's sweep.
#[test]
fn budget_exhaustion_mid_batch_matches_scalar_verdicts_and_checkpoints() {
    let model = wide_sweep_model();
    let tmp = std::env::temp_dir();
    for max_transitions in [1u64, 1919, 1920, 4095, 4096, 4097, 8192] {
        let scalar_ckpt = tmp.join(format!(
            "archval_batched_budget_s_{}_{max_transitions}.jsonl",
            std::process::id()
        ));
        let batched_ckpt = tmp.join(format!(
            "archval_batched_budget_b_{}_{max_transitions}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&scalar_ckpt);
        let _ = std::fs::remove_file(&batched_ckpt);

        let scalar_config = CampaignConfig {
            checkpoint: Some(scalar_ckpt.clone()),
            ..budgeted_config(max_transitions, 1)
        };
        let scalar = run_campaign(&model, &scalar_config).unwrap();

        for lanes in [64usize, 1920] {
            let batched_config = CampaignConfig {
                checkpoint: Some(batched_ckpt.clone()),
                ..budgeted_config(max_transitions, lanes)
            };
            let batched = run_campaign(&model, &batched_config).unwrap();

            assert_eq!(
                batched.to_json(),
                scalar.to_json(),
                "report diverged at max_transitions {max_transitions} lanes {lanes}"
            );
            let scalar_bytes = std::fs::read(&scalar_ckpt).unwrap();
            let batched_bytes = std::fs::read(&batched_ckpt).unwrap();
            assert_eq!(
                batched_bytes, scalar_bytes,
                "checkpoint bytes diverged at max_transitions {max_transitions} lanes {lanes}"
            );
            std::fs::remove_file(&batched_ckpt).unwrap();
        }
        std::fs::remove_file(&scalar_ckpt).unwrap();
    }
}
