//! Per-mutant resource budgets.

use std::time::Duration;

use archval_fsm::EnumBudget;

/// The resource envelope one mutant may consume, across both campaign
/// stages.
///
/// Stage 1 (re-enumeration) is bounded by `max_states`,
/// `max_transitions` and `deadline` through the enumerator's
/// [`EnumBudget`]; stage 2 (strategy replay) is bounded by `max_cycles`
/// per strategy and the same wall-clock `deadline`. A mutant exceeding a
/// bound is assigned [`StateExplosion`](crate::Verdict::StateExplosion)
/// or [`Timeout`](crate::Verdict::Timeout) — the campaign never runs
/// unbounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunBudget {
    /// Enumeration stops after discovering this many states. A mutant
    /// reaching the bound is a state explosion (pick a multiple of the
    /// reference design's state count).
    pub max_states: usize,
    /// Enumeration stops after evaluating this many transitions.
    pub max_transitions: u64,
    /// Wall-clock deadline for each stage of one mutant's run (the guard
    /// against wedged engines).
    pub deadline: Duration,
    /// Replay cycles each strategy may spend on one mutant before the
    /// mutant counts as [`Survived`](crate::Verdict::Survived).
    pub max_cycles: u64,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_states: 1 << 16,
            max_transitions: 1 << 24,
            deadline: Duration::from_secs(10),
            max_cycles: 1 << 16,
        }
    }
}

impl RunBudget {
    /// The enumerator-facing slice of this budget.
    pub fn enum_budget(&self) -> EnumBudget {
        EnumBudget {
            max_states: Some(self.max_states),
            max_transitions: Some(self.max_transitions),
            deadline: Some(self.deadline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archval_fsm::Truncation;

    #[test]
    fn enum_budget_mirrors_bounds() {
        let b = RunBudget { max_states: 7, ..Default::default() };
        let eb = b.enum_budget();
        assert_eq!(eb.max_states, Some(7));
        assert!(!eb.is_unbounded());
        // sanity: the truncation reasons the campaign maps to verdicts exist
        let _ = (Truncation::States, Truncation::Transitions, Truncation::Deadline);
    }
}
