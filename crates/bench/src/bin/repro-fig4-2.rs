//! Regenerates Figure 4.2: an implementation with *fewer* behaviours
//! (aliased input conditions) escapes the first-label tour and is caught
//! once all unique conditions are recorded.

use archval_sim::conformance::fewer_behaviors_experiment;

fn main() {
    println!("== Figure 4.2 — Erroneous FSM implementation with fewer behaviours ==\n");
    let (first, all) = fewer_behaviors_experiment();
    println!(
        "first-label policy (paper default): {} arcs, detected: {}",
        first.impl_arcs, first.detected
    );
    println!(
        "all-labels policy (Section 4 fix): {} arcs, detected: {}",
        all.impl_arcs, all.detected
    );
    assert!(!first.detected && all.detected);
    println!(
        "\n\"each arc is labelled with the first condition leading to a new state, so\n\
         either 'a' or 'c' will label the arc ... the wrong 'c' transition will never\n\
         be exercised\" — changing the enumeration to capture all unique transition\n\
         arcs restores detection, as the paper proposes."
    );
}
