//! Machine-readable validation summaries.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A flat summary of a validation run, serialisable for the experiment
/// harness (EXPERIMENTS.md is generated from these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationSummary {
    /// Name of the validated module.
    pub model_name: String,
    /// Reachable states (Table 3.2 row 1).
    pub states: usize,
    /// Packed bits per state (Table 3.2 row 2).
    pub bits_per_state: u32,
    /// State-graph edges (Table 3.2 row 5).
    pub edges: usize,
    /// Enumeration wall-clock seconds (Table 3.2 row 3).
    pub enumeration_seconds: f64,
    /// Traces generated (Table 3.3 row 1).
    pub traces: usize,
    /// Total edge traversals (Table 3.3 row 2).
    pub edge_traversals: u64,
    /// Total instructions (Table 3.3 row 3).
    pub instructions: u64,
    /// Vector-generation wall-clock seconds (Table 3.3 row 4).
    pub generation_seconds: f64,
    /// Longest single trace in edges (Table 3.3 row 6).
    pub longest_trace_edges: usize,
    /// Whether every arc was covered.
    pub full_coverage: bool,
}

impl fmt::Display for ValidationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== validation summary: {} ==", self.model_name)?;
        writeln!(f, "states            {}", self.states)?;
        writeln!(f, "bits per state    {}", self.bits_per_state)?;
        writeln!(f, "edges             {}", self.edges)?;
        writeln!(f, "enumeration       {:.2} s", self.enumeration_seconds)?;
        writeln!(f, "traces            {}", self.traces)?;
        writeln!(f, "edge traversals   {}", self.edge_traversals)?;
        writeln!(f, "instructions      {}", self.instructions)?;
        writeln!(f, "generation        {:.2} s", self.generation_seconds)?;
        writeln!(f, "longest trace     {} edges", self.longest_trace_edges)?;
        write!(f, "full arc coverage {}", self.full_coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_round_trips_through_json() {
        let s = ValidationSummary {
            model_name: "pp_control".into(),
            states: 229_571,
            bits_per_state: 98,
            edges: 1_172_848,
            enumeration_seconds: 18_307.0,
            traces: 1_296,
            edge_traversals: 21_200_173,
            instructions: 8_521_468,
            generation_seconds: 161_159.0,
            longest_trace_edges: 21_197_977,
            full_coverage: true,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: ValidationSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let text = s.to_string();
        assert!(text.contains("229571"));
        assert!(text.contains("pp_control"));
    }
}
