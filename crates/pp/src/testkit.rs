//! Shared test and bench support: building control models from specs,
//! preset names or canonical spec strings without re-spelling the
//! generate → parse → translate pipeline in every test file.
//!
//! Tests and downstream crates used to open with the same two lines —
//! `let scale = PpScale::micro(); let model =
//! pp_control_model(&scale).unwrap();` — which meant every spec change
//! fanned out through every test file. They now call [`micro_model`] (or
//! [`model_for`]/[`named_model`] for non-preset designs) instead.

use archval_fsm::Model;

use crate::design::{resolve_preset, DesignSpec};
use crate::fsm_model::pp_control_model;

/// Builds the control model for a spec, panicking on failure — the
/// ergonomic form for tests and benches, where a generator/translator
/// divergence is a hard bug.
///
/// # Panics
///
/// Panics if the spec is invalid or the generated Verilog fails to
/// translate.
#[must_use]
pub fn model_for(scale: &DesignSpec) -> Model {
    pp_control_model(scale)
        .unwrap_or_else(|e| panic!("control model for {} failed: {e}", scale.design_id()))
}

/// The micro preset and its model.
#[must_use]
pub fn micro_model() -> (DesignSpec, Model) {
    let scale = DesignSpec::micro();
    let model = model_for(&scale);
    (scale, model)
}

/// The standard preset and its model.
#[must_use]
pub fn standard_model() -> (DesignSpec, Model) {
    let scale = DesignSpec::standard();
    let model = model_for(&scale);
    (scale, model)
}

/// The full preset and its model.
#[must_use]
pub fn full_model() -> (DesignSpec, Model) {
    let scale = DesignSpec::full();
    let model = model_for(&scale);
    (scale, model)
}

/// Resolves a preset name (`pp-micro`, `micro`, ...) or a canonical spec
/// string (`beats=2,ways=2`) and builds its model.
///
/// # Panics
///
/// Panics if the name is neither a preset nor a parsable valid spec.
#[must_use]
pub fn named_model(name: &str) -> (DesignSpec, Model) {
    let scale = resolve_preset(name)
        .or_else(|| DesignSpec::parse(name).ok())
        .unwrap_or_else(|| panic!("`{name}` is neither a preset nor a valid design spec"));
    let model = model_for(&scale);
    (scale, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_named_resolution_covers_both_forms() {
        let (scale, model) = micro_model();
        assert_eq!(model.name(), scale.design_id());
        let (by_name, model2) = named_model("pp-micro");
        assert_eq!(by_name, scale);
        assert_eq!(model2.fingerprint(), model.fingerprint());
        let (by_spec, model3) = named_model("beats=2,ways=2");
        assert!(!by_spec.is_legacy());
        assert_eq!(model3.name(), by_spec.design_id());
    }

    #[test]
    #[should_panic(expected = "neither a preset nor a valid design spec")]
    fn named_model_rejects_garbage() {
        let _ = named_model("pp-frob");
    }
}
