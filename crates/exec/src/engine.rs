//! The register-machine interpreter executing a [`StepProgram`].

use archval_fsm::engine::{BatchError, EngineFactory, StepEngine};
use archval_fsm::Error;

use crate::batch::BatchProgram;
use crate::program::{Op, StepProgram};

/// The lazily built batched-execution state of a [`CompiledEngine`].
#[derive(Debug)]
struct BatchPlan {
    /// The predicated SoA suffix, or `None` when the program's control
    /// flow is unstructured and batches fall back to the scalar loop.
    program: Option<BatchProgram>,
    /// Lane arrays (values and predicates), slot-major.
    buf: Vec<u64>,
    /// Lane count the broadcast slots in `buf` are valid for.
    lanes: usize,
    /// Whether the broadcast slots hold the *current* state's prefix
    /// results (invalidated by `begin_state`).
    fresh: bool,
}

/// A [`StepEngine`] executing a compiled [`StepProgram`].
///
/// The engine owns only the mutable register file; the program is shared,
/// so spawning one engine per worker thread is cheap and workers never
/// contend. `begin_state` runs the state-only prefix once per dequeued
/// state; `step_choices` runs the choice-dependent suffix per permutation
/// and `step_batch` runs it once across a whole batch of permutations in
/// structure-of-arrays form (see [`crate::batch`]).
#[derive(Debug)]
pub struct CompiledEngine<'p> {
    program: &'p StepProgram,
    regs: Vec<u64>,
    prefix_evals: u64,
    batch: Option<BatchPlan>,
}

impl<'p> CompiledEngine<'p> {
    /// Creates an engine over `program` with a fresh register file.
    pub fn new(program: &'p StepProgram) -> Self {
        CompiledEngine { program, regs: program.init_regs.clone(), prefix_evals: 0, batch: None }
    }

    /// The program this engine executes.
    pub fn program(&self) -> &'p StepProgram {
        self.program
    }

    /// How many times the state-only prefix has been evaluated — exactly
    /// once per `begin_state`, regardless of how many scalar or batched
    /// suffix sweeps follow (the batched-execution regression guard).
    pub fn prefix_evals(&self) -> u64 {
        self.prefix_evals
    }

    /// Whether [`step_batch`](StepEngine::step_batch) runs the SoA
    /// interpreter for this program (`false` means the suffix control
    /// flow is unstructured and batches fall back to the scalar loop).
    /// Builds the batch plan as a side effect.
    pub fn batch_is_vectorised(&mut self) -> bool {
        self.plan().program.is_some()
    }

    fn plan(&mut self) -> &mut BatchPlan {
        self.batch.get_or_insert_with(|| BatchPlan {
            program: BatchProgram::build(self.program),
            buf: Vec::new(),
            lanes: 0,
            fresh: false,
        })
    }

    fn exec(
        &mut self,
        start: usize,
        end: usize,
        state: &[u64],
        choices: &[u64],
        out: &mut [u64],
    ) -> Result<(), Error> {
        let p = self.program;
        let regs = &mut self.regs;
        let mut pc = start;
        while pc < end {
            let i = p.instrs[pc];
            let (a, b) = (i.a as usize, i.b as usize);
            match i.op {
                Op::LoadVar => regs[i.dst as usize] = state[a],
                Op::LoadChoice => regs[i.dst as usize] = choices[a],
                Op::Move => regs[i.dst as usize] = regs[a],
                Op::Not => regs[i.dst as usize] = u64::from(regs[a] == 0),
                Op::BitNot => regs[i.dst as usize] = !regs[a],
                Op::And => regs[i.dst as usize] = u64::from(regs[a] != 0 && regs[b] != 0),
                Op::Or => regs[i.dst as usize] = u64::from(regs[a] != 0 || regs[b] != 0),
                Op::BitAnd => regs[i.dst as usize] = regs[a] & regs[b],
                Op::BitOr => regs[i.dst as usize] = regs[a] | regs[b],
                Op::BitXor => regs[i.dst as usize] = regs[a] ^ regs[b],
                Op::Add => regs[i.dst as usize] = regs[a].wrapping_add(regs[b]),
                Op::Sub => regs[i.dst as usize] = regs[a].wrapping_sub(regs[b]),
                Op::Mul => regs[i.dst as usize] = regs[a].wrapping_mul(regs[b]),
                Op::ModUnchecked => regs[i.dst as usize] = regs[a] % regs[b],
                Op::ModChecked => {
                    let d = regs[b];
                    if d == 0 {
                        return Err(Error::DivisionByZero);
                    }
                    regs[i.dst as usize] = regs[a] % d;
                }
                Op::Eq => regs[i.dst as usize] = u64::from(regs[a] == regs[b]),
                Op::Ne => regs[i.dst as usize] = u64::from(regs[a] != regs[b]),
                Op::Lt => regs[i.dst as usize] = u64::from(regs[a] < regs[b]),
                Op::Le => regs[i.dst as usize] = u64::from(regs[a] <= regs[b]),
                Op::Gt => regs[i.dst as usize] = u64::from(regs[a] > regs[b]),
                Op::Ge => regs[i.dst as usize] = u64::from(regs[a] >= regs[b]),
                Op::Shl => regs[i.dst as usize] = regs[a] << regs[b].min(63),
                Op::Shr => regs[i.dst as usize] = regs[a] >> regs[b].min(63),
                Op::CondMove => {
                    regs[i.dst as usize] = if regs[a] != 0 { regs[b] } else { regs[i.c as usize] }
                }
                Op::Jump => {
                    pc = a;
                    continue;
                }
                Op::JumpIfZero => {
                    if regs[a] == 0 {
                        pc = b;
                        continue;
                    }
                }
                Op::StoreMask => out[i.dst as usize] = regs[a] & p.var_masks[i.dst as usize],
                Op::StoreMod => out[i.dst as usize] = regs[a] % p.var_sizes[i.dst as usize],
            }
            pc += 1;
        }
        Ok(())
    }
}

impl StepEngine for CompiledEngine<'_> {
    fn begin_state(&mut self, state: &[u64]) -> Result<(), Error> {
        debug_assert_eq!(state.len(), self.program.var_sizes.len(), "state width mismatch");
        self.prefix_evals += 1;
        if let Some(plan) = &mut self.batch {
            plan.fresh = false;
        }
        // the prefix is branch-free and infallible by construction
        self.exec(0, self.program.prefix_len, state, &[], &mut [])
    }

    fn step_choices(&mut self, choices: &[u64], out: &mut [u64]) -> Result<(), Error> {
        debug_assert_eq!(choices.len(), self.program.n_choices, "choice width mismatch");
        debug_assert_eq!(out.len(), self.program.var_sizes.len(), "output width mismatch");
        let end = self.program.instrs.len();
        self.exec(self.program.prefix_len, end, &[], choices, out)
    }

    fn step_batch(
        &mut self,
        lanes: usize,
        choices: &[u64],
        out: &mut [u64],
    ) -> Result<(), BatchError> {
        if lanes == 0 {
            return Ok(());
        }
        debug_assert_eq!(choices.len(), self.program.n_choices * lanes);
        debug_assert_eq!(out.len(), self.program.var_sizes.len() * lanes);
        if self.plan().program.is_none() {
            // unstructured suffix: scalar per-lane fallback, never a panic
            return self.step_batch_scalar(lanes, choices, out);
        }
        let prog = self.program;
        let regs = &self.regs;
        let plan = self.batch.as_mut().expect("plan built above");
        let bp = plan.program.as_ref().expect("vectorised checked above");
        if !plan.fresh || plan.lanes != lanes {
            plan.buf.resize(bp.buf_len(lanes), 0);
            bp.broadcast(regs, lanes, &mut plan.buf);
            plan.lanes = lanes;
            plan.fresh = true;
        }
        bp.exec(prog, lanes, &mut plan.buf, choices, out)
    }
}

impl CompiledEngine<'_> {
    /// The default trait body, reachable from `step_batch` after the
    /// plan borrow ends.
    fn step_batch_scalar(
        &mut self,
        lanes: usize,
        choices: &[u64],
        out: &mut [u64],
    ) -> Result<(), BatchError> {
        let n_choices = self.program.n_choices;
        let n_vars = self.program.var_sizes.len();
        let mut ch = vec![0u64; n_choices];
        let mut vals = vec![0u64; n_vars];
        for l in 0..lanes {
            for (c, slot) in ch.iter_mut().enumerate() {
                *slot = choices[c * lanes + l];
            }
            self.step_choices(&ch, &mut vals).map_err(|error| BatchError { lane: l, error })?;
            for (v, &val) in vals.iter().enumerate() {
                out[v * lanes + l] = val;
            }
        }
        Ok(())
    }
}

/// Spawns one [`CompiledEngine`] per caller over the shared program —
/// what the parallel enumerator and fuzz workers use.
impl EngineFactory for StepProgram {
    fn spawn(&self) -> Box<dyn StepEngine + '_> {
        Box::new(CompiledEngine::new(self))
    }
}
